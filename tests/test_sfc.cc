/**
 * @file
 * Tests for the space-filling-curve module: Morton coding, Hilbert
 * bijection and unit-step property, and the tile traversals (every
 * traversal is a permutation; locality-oriented traversals keep
 * consecutive tiles adjacent far more often than scanline).
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "sfc/hilbert.hh"
#include "sfc/morton.hh"
#include "sfc/tile_order.hh"

namespace dtexl {
namespace {

// ---------- Morton ----------

TEST(Morton, KnownValues)
{
    EXPECT_EQ(mortonEncode(0, 0), 0u);
    EXPECT_EQ(mortonEncode(1, 0), 1u);
    EXPECT_EQ(mortonEncode(0, 1), 2u);
    EXPECT_EQ(mortonEncode(1, 1), 3u);
    EXPECT_EQ(mortonEncode(2, 0), 4u);
    EXPECT_EQ(mortonEncode(0, 2), 8u);
    EXPECT_EQ(mortonEncode(3, 5), 0x27u);
}

TEST(Morton, RoundTrip)
{
    for (std::uint32_t x = 0; x < 64; x += 7) {
        for (std::uint32_t y = 0; y < 64; y += 5) {
            const std::uint64_t code = mortonEncode(x, y);
            EXPECT_EQ(mortonDecodeX(code), x);
            EXPECT_EQ(mortonDecodeY(code), y);
        }
    }
    // Large coordinates exercise the full bit-spread.
    const std::uint64_t code = mortonEncode(0xdeadbeef, 0x12345678);
    EXPECT_EQ(mortonDecodeX(code), 0xdeadbeefu);
    EXPECT_EQ(mortonDecodeY(code), 0x12345678u);
}

TEST(Morton, LocalityWithinBlocks)
{
    // A 4x4-aligned block maps to 16 consecutive codes: the property
    // the tiled texture layout relies on (64 B line = 4x4 texels).
    const std::uint64_t base = mortonEncode(4, 8);
    std::set<std::uint64_t> codes;
    for (std::uint32_t dy = 0; dy < 4; ++dy)
        for (std::uint32_t dx = 0; dx < 4; ++dx)
            codes.insert(mortonEncode(4 + dx, 8 + dy));
    EXPECT_EQ(codes.size(), 16u);
    EXPECT_EQ(*codes.begin(), base);
    EXPECT_EQ(*codes.rbegin(), base + 15);
}

// ---------- Hilbert ----------

class HilbertSideTest : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(HilbertSideTest, BijectionAndRoundTrip)
{
    const std::uint32_t side = GetParam();
    std::set<std::pair<std::uint32_t, std::uint32_t>> seen;
    for (std::uint64_t d = 0; d < std::uint64_t{side} * side; ++d) {
        std::uint32_t x, y;
        hilbertD2XY(side, d, x, y);
        EXPECT_LT(x, side);
        EXPECT_LT(y, side);
        EXPECT_TRUE(seen.insert({x, y}).second)
            << "duplicate cell at d=" << d;
        EXPECT_EQ(hilbertXY2D(side, x, y), d);
    }
    EXPECT_EQ(seen.size(), std::size_t{side} * side);
}

TEST_P(HilbertSideTest, UnitSteps)
{
    // The defining Hilbert property: consecutive indices are grid
    // neighbours.
    const std::uint32_t side = GetParam();
    std::uint32_t px, py;
    hilbertD2XY(side, 0, px, py);
    for (std::uint64_t d = 1; d < std::uint64_t{side} * side; ++d) {
        std::uint32_t x, y;
        hilbertD2XY(side, d, x, y);
        EXPECT_TRUE(isEdgeAdjacent(
            {static_cast<std::int32_t>(px), static_cast<std::int32_t>(py)},
            {static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)}))
            << "jump at d=" << d;
        px = x;
        py = y;
    }
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, HilbertSideTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u));

// ---------- Tile orders ----------

using GridParam = std::tuple<std::uint32_t, std::uint32_t>;

class TileOrderGridTest : public ::testing::TestWithParam<GridParam>
{};

TEST_P(TileOrderGridTest, EveryOrderIsAPermutation)
{
    const auto [tx, ty] = GetParam();
    for (TileOrder order : kAllTileOrders) {
        const auto trav = makeTileOrder(order, tx, ty);
        ASSERT_EQ(trav.size(), std::size_t{tx} * ty)
            << toString(order) << " on " << tx << "x" << ty;
        std::set<TileId> seen(trav.begin(), trav.end());
        EXPECT_EQ(seen.size(), trav.size());
        EXPECT_EQ(*seen.rbegin(), tx * ty - 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    GridShapes, TileOrderGridTest,
    ::testing::Values(GridParam{1, 1}, GridParam{4, 4}, GridParam{8, 8},
                      GridParam{16, 16}, GridParam{5, 3},
                      GridParam{62, 24},   // Table II screen
                      GridParam{13, 7}, GridParam{1, 9},
                      GridParam{31, 2}));

TEST(TileOrders, ScanlineIsRowMajor)
{
    const auto t = makeTileOrder(TileOrder::Scanline, 3, 2);
    EXPECT_EQ(t, (std::vector<TileId>{0, 1, 2, 3, 4, 5}));
}

TEST(TileOrders, SOrderSerpentine)
{
    const auto t = makeTileOrder(TileOrder::SOrder, 3, 2);
    EXPECT_EQ(t, (std::vector<TileId>{0, 1, 2, 5, 4, 3}));
}

TEST(TileOrders, ZOrderSquare)
{
    const auto t = makeTileOrder(TileOrder::ZOrder, 2, 2);
    EXPECT_EQ(t, (std::vector<TileId>{0, 1, 2, 3}));
    const auto t4 = makeTileOrder(TileOrder::ZOrder, 4, 4);
    // First quadrant of a 4x4 Z-order: (0,0),(1,0),(0,1),(1,1), then
    // jumps to (2,0).
    EXPECT_EQ(t4[0], 0u);
    EXPECT_EQ(t4[1], 1u);
    EXPECT_EQ(t4[2], 4u);
    EXPECT_EQ(t4[3], 5u);
    EXPECT_EQ(t4[4], 2u);
}

TEST(TileOrders, SOrderIsFullyAdjacent)
{
    const auto t = makeTileOrder(TileOrder::SOrder, 10, 6);
    EXPECT_DOUBLE_EQ(adjacencyFraction(t, 10), 1.0);
}

TEST(TileOrders, HilbertAdjacentWithinSubframes)
{
    // On a single 8x8 sub-frame the traversal is a pure Hilbert curve:
    // fully adjacent.
    const auto t = makeTileOrder(TileOrder::RectHilbert, 8, 8);
    EXPECT_DOUBLE_EQ(adjacencyFraction(t, 8), 1.0);
}

TEST(TileOrders, LocalityRanking)
{
    // On the Table II tile grid, Hilbert and S-order preserve
    // adjacency better than Z-order, which beats nothing; scanline
    // breaks adjacency once per row end.
    const std::uint32_t tx = 62, ty = 24;
    const double adj_scan =
        adjacencyFraction(makeTileOrder(TileOrder::Scanline, tx, ty), tx);
    const double adj_z =
        adjacencyFraction(makeTileOrder(TileOrder::ZOrder, tx, ty), tx);
    const double adj_h = adjacencyFraction(
        makeTileOrder(TileOrder::RectHilbert, tx, ty), tx);
    const double adj_s =
        adjacencyFraction(makeTileOrder(TileOrder::SOrder, tx, ty), tx);
    EXPECT_GT(adj_h, adj_z);
    EXPECT_GT(adj_s, adj_z);
    EXPECT_GT(adj_z, 0.5);
    EXPECT_LT(adj_scan, 1.0);
    EXPECT_GT(adj_h, 0.9);
}

TEST(TileOrders, RectHilbertCoversPartialSubframes)
{
    // 10x5 grid: right and bottom sub-frames are partial; the
    // traversal must still be a permutation (checked in the
    // parameterized test) and must start inside the first sub-frame.
    const auto t = makeTileOrder(TileOrder::RectHilbert, 10, 5);
    const Coord2 first = tileCoord(t.front(), 10);
    EXPECT_LT(first.x, 8);
    EXPECT_LT(first.y, 5);
}

} // namespace
} // namespace dtexl

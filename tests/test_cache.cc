/**
 * @file
 * Unit tests for the set-associative cache model: hit/miss behaviour,
 * LRU replacement, write-back of dirty victims, MSHR merging and
 * capacity stalls, port arbitration, and timing-vs-contents resets.
 */

#include <gtest/gtest.h>

#include "common/config.hh"
#include "mem/cache.hh"

namespace dtexl {
namespace {

/** A perfect backing store with fixed latency, recording accesses. */
class FakeMem : public MemLevel
{
  public:
    explicit FakeMem(Cycle latency) : latency(latency) {}

    Cycle
    access(Addr addr, AccessType type, Cycle now) override
    {
        ++count;
        lastAddr = addr;
        lastType = type;
        if (type == AccessType::Write)
            ++writes;
        return now + latency;
    }

    Cycle latency;
    std::uint64_t count = 0;
    std::uint64_t writes = 0;
    Addr lastAddr = 0;
    AccessType lastType = AccessType::Read;
};

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 64 B = 512 B.
    CacheConfig c;
    c.sizeBytes = 512;
    c.lineBytes = 64;
    c.ways = 2;
    c.hitLatency = 1;
    c.numMshrs = 4;
    return c;
}

TEST(Cache, ColdMissThenHit)
{
    FakeMem mem(100);
    Cache c("t", smallCache(), 4, mem);

    const Cycle t1 = c.access(0x1000, AccessType::Read, 0);
    EXPECT_EQ(t1, 101u);  // 1 cycle tag + 100 backing
    EXPECT_EQ(mem.count, 1u);
    EXPECT_EQ(c.misses(), 1u);

    // Second access at a later time hits in 1 cycle.
    const Cycle t2 = c.access(0x1000, AccessType::Read, 200);
    EXPECT_EQ(t2, 201u);
    EXPECT_EQ(mem.count, 1u);
    EXPECT_EQ(c.stats().get("read_hit"), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit)
{
    FakeMem mem(50);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x1000, AccessType::Read, 0);
    c.access(0x103F, AccessType::Read, 100);  // last byte of the line
    EXPECT_EQ(mem.count, 1u);
}

TEST(Cache, HitUnderFillWaitsForData)
{
    FakeMem mem(100);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x1000, AccessType::Read, 0);  // fill completes at 101
    // A second access to the same line at cycle 10 must not complete
    // before the line arrives.
    const Cycle t = c.access(0x1010, AccessType::Read, 10);
    EXPECT_GE(t, 101u);
    EXPECT_EQ(mem.count, 1u);  // merged, no extra downstream traffic
    EXPECT_EQ(c.stats().get("hit_under_fill"), 1u);
}

TEST(Cache, LruEviction)
{
    FakeMem mem(10);
    Cache c("t", smallCache(), 4, mem);
    // Three lines mapping to the same set (set stride = 4 sets * 64 B
    // = 256 B): 0x0, 0x100, 0x200.
    c.access(0x000, AccessType::Read, 0);
    c.access(0x100, AccessType::Read, 100);
    // Touch 0x000 so 0x100 becomes LRU.
    c.access(0x000, AccessType::Read, 200);
    c.access(0x200, AccessType::Read, 300);  // evicts 0x100
    EXPECT_TRUE(c.contains(0x000));
    EXPECT_FALSE(c.contains(0x100));
    EXPECT_TRUE(c.contains(0x200));
}

TEST(Cache, DirtyVictimWritesBack)
{
    FakeMem mem(10);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Write, 0);  // allocates + dirties
    c.access(0x100, AccessType::Read, 100);
    EXPECT_EQ(mem.writes, 0u);
    c.access(0x200, AccessType::Read, 200);  // evicts dirty 0x000
    EXPECT_EQ(mem.writes, 1u);
    EXPECT_EQ(c.stats().get("writeback"), 1u);
}

TEST(Cache, CleanVictimSilentlyDropped)
{
    FakeMem mem(10);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Read, 0);
    c.access(0x100, AccessType::Read, 100);
    c.access(0x200, AccessType::Read, 200);
    EXPECT_EQ(mem.writes, 0u);
}

TEST(Cache, MshrCapacityStalls)
{
    FakeMem mem(1000);
    CacheConfig cfg = smallCache();
    cfg.numMshrs = 2;
    Cache c("t", cfg, 4, mem);
    // Two outstanding misses fill the MSHRs.
    c.access(0x0000, AccessType::Read, 0);
    c.access(0x1000, AccessType::Read, 0);
    // Third miss at cycle 1 must wait for an MSHR (~cycle 1001+).
    const Cycle t = c.access(0x2000, AccessType::Read, 1);
    EXPECT_GT(t, 1000u);
    EXPECT_GE(c.stats().get("mshr_stall"), 1u);
}

TEST(Cache, PortBandwidthBoundsBursts)
{
    // Ports are a sliding-window rate limit: a 1-port cache admits up
    // to 8 accesses in any 8-cycle window; the 9th is pushed a full
    // window out.
    FakeMem mem(10);
    CacheConfig cfg = smallCache();
    Cache c("t", cfg, 1, mem);  // single port
    c.access(0x000, AccessType::Read, 0);  // warm the line
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(c.access(0x000, AccessType::Read, 100), 101u) << i;
    const Cycle pushed = c.access(0x000, AccessType::Read, 100);
    EXPECT_EQ(pushed, 109u);
    EXPECT_GE(c.stats().get("port_stall"), 1u);
}

TEST(Cache, WidePortAllowsParallelHits)
{
    FakeMem mem(10);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Read, 0);
    c.access(0x040, AccessType::Read, 50);
    const Cycle a = c.access(0x000, AccessType::Read, 100);
    const Cycle b = c.access(0x040, AccessType::Read, 100);
    EXPECT_EQ(a, 101u);
    EXPECT_EQ(b, 101u);
}

TEST(Cache, WriteLineAllocatesWithoutFill)
{
    FakeMem mem(100);
    Cache c("t", smallCache(), 4, mem);
    // A full-line streaming store allocates without reading below.
    const Cycle t = c.writeLine(0x000, 10);
    EXPECT_EQ(t, 11u);  // port + hit latency only
    EXPECT_EQ(mem.count, 0u);
    EXPECT_TRUE(c.contains(0x000));
    // It left the line dirty: conflicting it out writes back.
    c.access(0x100, AccessType::Read, 100);
    c.access(0x200, AccessType::Read, 200);
    EXPECT_EQ(mem.writes, 1u);
}

TEST(Cache, WriteLineHitIsCheap)
{
    FakeMem mem(100);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Read, 0);
    const Cycle t = c.writeLine(0x000, 500);
    EXPECT_EQ(t, 501u);
    EXPECT_EQ(c.stats().get("write_hit"), 1u);
    EXPECT_EQ(c.stats().get("write_validate"), 0u);
}

TEST(Cache, MshrIntervalsDoNotBlockEarlierAccesses)
{
    // Misses registered at late cycles must not stall a
    // logically-earlier miss whose lifetime does not overlap theirs.
    FakeMem mem(100);
    CacheConfig cfg = smallCache();
    cfg.numMshrs = 1;
    Cache c("t", cfg, 4, mem);
    c.access(0x0000, AccessType::Read, 10'000);  // in flight 10k..10.1k
    // A miss at cycle 0 completes long before: no stall.
    const Cycle t = c.access(0x1000, AccessType::Read, 0);
    EXPECT_EQ(t, 101u);
    EXPECT_EQ(c.stats().get("mshr_stall"), 0u);
}

TEST(Cache, PrunedIntervalsKeepBlocking)
{
    // Regression for the MSHR prune policy: purging must evict only
    // intervals whose fill precedes the current access. The old
    // oldest-first size-capped prune dropped a still-in-flight miss
    // once enough later misses were recorded, so an access that
    // overlapped it sailed through without the capacity stall.
    FakeMem mem(10'000);
    CacheConfig cfg = smallCache();
    cfg.numMshrs = 2;  // history cap = 16 recorded intervals
    Cache c("t", cfg, 16, mem);

    // A long miss in flight over [1, 10001).
    EXPECT_EQ(c.access(0x0000, AccessType::Read, 0), 10'001u);

    // Dozens of instantly-completing misses: each records an interval,
    // and each purge retires the previous one (its fill precedes the
    // next access), so the history never grows — but a size-capped
    // prune would have pushed the long miss out after the 16th.
    mem.latency = 0;
    for (std::uint32_t i = 0; i < 24; ++i)
        c.access(0x100000 + Addr{i} * 64, AccessType::Read, 2 + 2 * i);
    EXPECT_EQ(c.stats().get("mshr_stall"), 0u);

    // A second long miss joins the first in flight.
    mem.latency = 10'000;
    c.access(0x200000, AccessType::Read, 100);  // in flight [101, 10101)

    // Both MSHRs are busy at cycle 5000: the probe must stall until
    // the first long miss fills at 10001, which only happens if that
    // interval survived all 24 prunes above.
    mem.latency = 0;
    const Cycle t = c.access(0x300000, AccessType::Read, 5'000);
    EXPECT_GE(t, 10'001u);
    EXPECT_GE(c.stats().get("mshr_stall"), 1u);
}

TEST(Cache, PrefetchNextLineOnMiss)
{
    FakeMem mem(50);
    CacheConfig cfg = smallCache();
    cfg.prefetchNextLine = true;
    Cache c("t", cfg, 4, mem);

    c.access(0x000, AccessType::Read, 0);
    // The demand miss also fetched line 0x040.
    EXPECT_EQ(mem.count, 2u);
    EXPECT_TRUE(c.contains(0x040));
    EXPECT_EQ(c.stats().get("prefetch_issued"), 1u);

    // The prefetched line hits (possibly under fill).
    const Cycle t = c.access(0x040, AccessType::Read, 200);
    EXPECT_EQ(t, 201u);
    EXPECT_EQ(mem.count, 2u);
}

TEST(Cache, PrefetchSkipsResidentLines)
{
    FakeMem mem(50);
    CacheConfig cfg = smallCache();
    cfg.prefetchNextLine = true;
    Cache c("t", cfg, 4, mem);
    c.access(0x040, AccessType::Read, 0);   // fetches 0x040 + 0x080
    mem.count = 0;
    c.access(0x000, AccessType::Read, 500); // next line 0x040 resident
    EXPECT_EQ(mem.count, 1u);  // only the demand fetch
}

TEST(Cache, PrefetchDisabledByDefault)
{
    FakeMem mem(50);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Read, 0);
    EXPECT_EQ(mem.count, 1u);
    EXPECT_FALSE(c.contains(0x040));
}

TEST(Cache, FlushAllDropsContents)
{
    FakeMem mem(10);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Read, 0);
    EXPECT_TRUE(c.contains(0x000));
    c.flushAll();
    EXPECT_FALSE(c.contains(0x000));
    // Stats survive the flush.
    EXPECT_EQ(c.reads(), 1u);
}

TEST(Cache, ResetTimingKeepsContents)
{
    FakeMem mem(100);
    Cache c("t", smallCache(), 1, mem);
    c.access(0x000, AccessType::Read, 1'000'000);
    c.resetTiming();
    EXPECT_TRUE(c.contains(0x000));
    // After a timing reset, an access at cycle 0 is not pushed behind
    // the old port cycle.
    const Cycle t = c.access(0x000, AccessType::Read, 0);
    EXPECT_EQ(t, 1u);
}

TEST(Cache, MissRateAccounting)
{
    FakeMem mem(10);
    Cache c("t", smallCache(), 4, mem);
    c.access(0x000, AccessType::Read, 0);
    c.access(0x000, AccessType::Read, 100);
    c.access(0x000, AccessType::Read, 200);
    c.access(0x040, AccessType::Read, 300);
    EXPECT_EQ(c.accesses(), 4u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

/** Associativity sweep: with W ways, W conflicting lines fit. */
class CacheWaysTest : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(CacheWaysTest, WaysLinesCoResident)
{
    const std::uint32_t ways = GetParam();
    FakeMem mem(10);
    CacheConfig cfg;
    cfg.sizeBytes = 64 * 4 * ways;  // 4 sets
    cfg.lineBytes = 64;
    cfg.ways = ways;
    cfg.numMshrs = 16;
    Cache c("t", cfg, 4, mem);

    const Addr stride = 4 * 64;  // same set
    for (std::uint32_t i = 0; i < ways; ++i)
        c.access(i * stride, AccessType::Read, i * 100);
    for (std::uint32_t i = 0; i < ways; ++i)
        EXPECT_TRUE(c.contains(i * stride)) << "way " << i;
    // One more conflicts out exactly the LRU line (line 0).
    c.access(ways * stride, AccessType::Read, ways * 100);
    EXPECT_FALSE(c.contains(0));
    EXPECT_TRUE(c.contains(stride));
}

INSTANTIATE_TEST_SUITE_P(Associativity, CacheWaysTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for the energy model: the breakdown sums, scales with its
 * inputs, and behaves sensibly on real frame statistics.
 */

#include <gtest/gtest.h>

#include "core/gpu.hh"
#include "power/energy_model.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

FrameStats
syntheticStats()
{
    FrameStats fs;
    fs.totalCycles = 1'000'000;
    fs.shaderInstructions = 2'000'000;
    fs.textureSamples = 400'000;
    fs.l1TexAccesses = 500'000;
    fs.l1VertexAccesses = 10'000;
    fs.l1TileAccesses = 50'000;
    fs.l2Accesses = 100'000;
    fs.dramAccesses = 20'000;
    fs.quadsRasterized = 120'000;
    fs.earlyZTests = 120'000;
    fs.blendOps = 100'000;
    fs.verticesProcessed = 5'000;
    fs.primitivesBinned = 2'000;
    return fs;
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyModel model;
    GpuConfig cfg;
    const EnergyBreakdown e = model.compute(cfg, syntheticStats());
    EXPECT_NEAR(e.total(),
                e.shaderDynamic + e.l1 + e.l2 + e.dram +
                    e.fixedFunction + e.staticEnergy,
                1e-15);
    EXPECT_GT(e.total(), 0.0);
}

TEST(Energy, StaticScalesWithCycles)
{
    EnergyModel model;
    GpuConfig cfg;
    FrameStats fs = syntheticStats();
    const double e1 = model.compute(cfg, fs).staticEnergy;
    fs.totalCycles *= 2;
    const double e2 = model.compute(cfg, fs).staticEnergy;
    EXPECT_NEAR(e2, 2.0 * e1, 1e-12);
}

TEST(Energy, L2ComponentScalesWithAccesses)
{
    EnergyModel model;
    GpuConfig cfg;
    FrameStats fs = syntheticStats();
    const double e1 = model.compute(cfg, fs).l2;
    fs.l2Accesses /= 2;
    const double e2 = model.compute(cfg, fs).l2;
    EXPECT_NEAR(e2, 0.5 * e1, 1e-12);
}

TEST(Energy, FewerL2AccessesAndCyclesReduceTotal)
{
    // The DTexL effect in miniature: -46.8% L2 accesses and -16% time
    // must lower total energy.
    EnergyModel model;
    GpuConfig cfg;
    FrameStats base = syntheticStats();
    FrameStats dtexl = base;
    dtexl.l2Accesses = static_cast<std::uint64_t>(
        static_cast<double>(base.l2Accesses) * 0.532);
    dtexl.totalCycles = static_cast<std::uint64_t>(
        static_cast<double>(base.totalCycles) / 1.193);
    EXPECT_LT(model.compute(cfg, dtexl).total(),
              model.compute(cfg, base).total());
}

TEST(Energy, CustomParamsRespected)
{
    EnergyParams p;
    p.staticWatts = 0.0;
    p.l2AccessPj = 100.0;
    EnergyModel model(p);
    GpuConfig cfg;
    FrameStats fs;
    fs.l2Accesses = 1'000'000;
    const EnergyBreakdown e = model.compute(cfg, fs);
    EXPECT_DOUBLE_EQ(e.staticEnergy, 0.0);
    EXPECT_NEAR(e.l2, 1e-12 * 100.0 * 1e6, 1e-15);
}

TEST(Energy, DescribeListsComponents)
{
    EnergyModel model;
    GpuConfig cfg;
    const std::string d =
        model.compute(cfg, syntheticStats()).describe();
    EXPECT_NE(d.find("L2"), std::string::npos);
    EXPECT_NE(d.find("DRAM"), std::string::npos);
    EXPECT_NE(d.find("total"), std::string::npos);
}

TEST(Energy, RealFrameHasPlausibleComposition)
{
    GpuConfig cfg;
    cfg.screenWidth = 512;
    cfg.screenHeight = 256;
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg);
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    EnergyModel model;
    const EnergyBreakdown e = model.compute(cfg, fs);
    EXPECT_GT(e.total(), 0.0);
    // Every component participates.
    EXPECT_GT(e.shaderDynamic, 0.0);
    EXPECT_GT(e.l1, 0.0);
    EXPECT_GT(e.l2, 0.0);
    EXPECT_GT(e.dram, 0.0);
    EXPECT_GT(e.fixedFunction, 0.0);
    EXPECT_GT(e.staticEnergy, 0.0);
    // Static power is significant but not dominant past all dynamic
    // components combined being negligible.
    EXPECT_LT(e.staticEnergy, 0.9 * e.total());
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for texture formats: storage rates, block addressing, mip
 * chain footprints, and the locality consequence the paper cares
 * about — compressed textures pack a wider texel region per cache
 * line.
 */

#include <gtest/gtest.h>

#include <set>

#include "texture/sampler.hh"
#include "texture/texture.hh"

namespace dtexl {
namespace {

TEST(Format, StorageRates)
{
    EXPECT_EQ(levelBytes(TexFormat::RGBA8, 256), 256u * 256 * 4);
    EXPECT_EQ(levelBytes(TexFormat::RGB565, 256), 256u * 256 * 2);
    EXPECT_EQ(levelBytes(TexFormat::ETC2, 256), 256u * 256 / 2);
    // Sub-block mips round up to whole blocks.
    EXPECT_EQ(levelBytes(TexFormat::ETC2, 2), 8u);
    EXPECT_EQ(levelBytes(TexFormat::ETC2, 1), 8u);
}

TEST(Format, Names)
{
    EXPECT_EQ(toString(TexFormat::RGBA8), "RGBA8");
    EXPECT_EQ(toString(TexFormat::ETC2), "ETC2");
}

TEST(Format, ChainSmallerWhenCompressed)
{
    const TextureDesc rgba(0, 0, 512, TexFormat::RGBA8);
    const TextureDesc etc(1, 0, 512, TexFormat::ETC2);
    EXPECT_GT(rgba.totalBytes(), 7u * etc.totalBytes());
    EXPECT_EQ(rgba.numMipLevels(), etc.numMipLevels());
}

TEST(Format, Rgb565HalvesLineDensity)
{
    // A 64 B line holds 32 RGB565 texels: a Morton 8x4 region.
    TextureDesc t(0, 0, 64, TexFormat::RGB565);
    std::set<Addr> lines;
    for (std::uint32_t y = 0; y < 4; ++y)
        for (std::uint32_t x = 0; x < 8; ++x)
            lines.insert(t.texelAddr(0, x, y) / 64);
    EXPECT_EQ(lines.size(), 1u);
    EXPECT_NE(t.texelAddr(0, 8, 0) / 64, t.texelAddr(0, 0, 0) / 64);
}

TEST(Format, Etc2LineCoversEightByEightTexels)
{
    // 64 B = 8 ETC2 blocks = a Morton 4x2 block region = 16x8 texels.
    TextureDesc t(0, 0, 128, TexFormat::ETC2);
    std::set<Addr> lines;
    for (std::uint32_t y = 0; y < 8; ++y)
        for (std::uint32_t x = 0; x < 16; ++x)
            lines.insert(t.texelAddr(0, x, y) / 64);
    EXPECT_EQ(lines.size(), 1u);
}

TEST(Format, BlockAddressingSharedWithinBlock)
{
    TextureDesc t(0, 0, 64, TexFormat::ETC2);
    // All 16 texels of a 4x4 block resolve to the same address.
    const Addr a = t.texelAddr(0, 4, 8);
    for (std::uint32_t dy = 0; dy < 4; ++dy)
        for (std::uint32_t dx = 0; dx < 4; ++dx)
            EXPECT_EQ(t.texelAddr(0, 4 + dx, 8 + dy), a);
    EXPECT_NE(t.texelAddr(0, 8, 8), a);
}

TEST(Format, SamplerWorksOnCompressedTextures)
{
    TextureDesc t(0, 0x1000, 128, TexFormat::ETC2);
    const SampleFootprint fp =
        sampleFootprint(t, FilterMode::Trilinear, 0.4f, 0.6f, 0.8f);
    EXPECT_EQ(fp.count, 8u);
    for (std::uint32_t i = 0; i < fp.count; ++i) {
        EXPECT_GE(fp.texels[i], 0x1000u);
        EXPECT_LT(fp.texels[i], 0x1000u + t.totalBytes());
    }
    // A bilinear tap interior to one block needs exactly one line.
    std::array<Addr, SampleFootprint::kMaxTexels> lines;
    const SampleFootprint interior = sampleFootprint(
        t, FilterMode::Bilinear, 1.5f / 128.0f, 1.5f / 128.0f, 0.0f);
    EXPECT_EQ(footprintLines(interior, 64, lines), 1u);
}

TEST(Format, CompressionWidensQuadSharing)
{
    // The locality consequence: at 1 texel/pixel, the screen area
    // mapping to one line is ~2x2 quads for RGBA8 but ~8x4 quads for
    // ETC2, so more adjacent quads share a line.
    const TextureDesc rgba(0, 0, 256, TexFormat::RGBA8);
    const TextureDesc etc(1, 0, 256, TexFormat::ETC2);
    auto lines_for_region = [&](const TextureDesc &t, int quads) {
        std::set<Addr> lines;
        for (int qy = 0; qy < quads; ++qy)
            for (int qx = 0; qx < quads; ++qx)
                for (int k = 0; k < 4; ++k) {
                    const float u = (static_cast<float>(qx * 2 + k % 2) +
                                     0.5f) /
                                    256.0f;
                    const float v = (static_cast<float>(qy * 2 + k / 2) +
                                     0.5f) /
                                    256.0f;
                    const SampleFootprint fp = sampleFootprint(
                        t, FilterMode::Bilinear, u, v, 0.0f);
                    for (std::uint32_t i = 0; i < fp.count; ++i)
                        lines.insert(fp.texels[i] / 64);
                }
        return lines.size();
    };
    // Same 8x8-quad screen region touches far fewer lines compressed.
    EXPECT_GT(lines_for_region(rgba, 8),
              3 * lines_for_region(etc, 8));
}

} // namespace
} // namespace dtexl

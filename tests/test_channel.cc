/**
 * @file
 * Channel close/shutdown semantics (see DESIGN.md "Service daemon"):
 * the daemon's drain path closes the admission queue while producers
 * (admit, retryLoop) may be blocked mid-push and workers are popping,
 * so the close contract has to be exact — blocked producers wake and
 * fail, items already accepted are never lost, consumers drain the
 * backlog before seeing nullopt, and close() is idempotent. The basic
 * FIFO/blocking behaviour is covered next to the raster domains in
 * test_raster_domains.cc; this file is the shutdown-ordering battery,
 * and runs under ThreadSanitizer in CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/channel.hh"

namespace dtexl {
namespace {

TEST(ChannelClose, WakesBlockedProducers)
{
    Channel<int> ch(1);
    ASSERT_TRUE(ch.push(0)); // fill to capacity

    std::atomic<int> rejected{0};
    std::vector<std::thread> producers;
    for (int i = 0; i < 4; ++i) {
        producers.emplace_back([&ch, &rejected, i] {
            if (!ch.push(100 + i))
                rejected.fetch_add(1, std::memory_order_relaxed);
        });
    }
    // Let the producers park on the full channel, then close it: all
    // four must wake and report failure rather than block forever.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.close();
    for (std::thread &t : producers)
        t.join();
    EXPECT_EQ(rejected.load(), 4)
        << "every producer blocked across close() must fail its push";

    // The pre-close item is still deliverable.
    auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0);
    EXPECT_FALSE(ch.pop().has_value());
}

TEST(ChannelClose, InFlightItemsDrainBeforeNullopt)
{
    Channel<int> ch(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ch.push(i));
    ch.close();

    // Consumers started after the close still receive every accepted
    // item, in order, and only then the closed sentinel.
    for (int i = 0; i < 5; ++i) {
        auto v = ch.pop();
        ASSERT_TRUE(v.has_value()) << "item " << i << " lost at close";
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(ch.pop().has_value());
    EXPECT_FALSE(ch.pop().has_value())
        << "a drained closed channel stays drained";
}

TEST(ChannelClose, DoubleCloseIsIdempotent)
{
    Channel<int> ch(2);
    ASSERT_TRUE(ch.push(1));
    ch.close();
    ch.close(); // second close must be a harmless no-op
    EXPECT_FALSE(ch.push(2));
    auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
    EXPECT_FALSE(ch.pop().has_value());
    ch.close(); // ...even after the drain
}

TEST(ChannelClose, TryOpsAfterClose)
{
    Channel<int> ch(4);
    ASSERT_TRUE(ch.tryPush(9));
    ch.close();
    EXPECT_FALSE(ch.tryPush(10)) << "tryPush after close must fail";
    auto v = ch.tryPop();
    ASSERT_TRUE(v.has_value()) << "tryPop still drains the backlog";
    EXPECT_EQ(*v, 9);
    EXPECT_FALSE(ch.tryPop().has_value());
}

TEST(ChannelClose, WakesBlockedConsumers)
{
    Channel<int> ch(4);
    std::atomic<int> woke{0};
    std::vector<std::thread> consumers;
    for (int i = 0; i < 3; ++i) {
        consumers.emplace_back([&ch, &woke] {
            if (!ch.pop().has_value())
                woke.fetch_add(1, std::memory_order_relaxed);
        });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.close();
    for (std::thread &t : consumers)
        t.join();
    EXPECT_EQ(woke.load(), 3)
        << "close() must wake every parked consumer with nullopt";
}

TEST(ChannelClose, ConcurrentProducersConsumersAndClose)
{
    // Stress the close race the daemon actually runs: producers and
    // consumers in full flight when close() lands. Invariant: every
    // item a push() accepted is popped exactly once (no loss, no
    // duplication), regardless of where the close cut the stream.
    Channel<int> ch(4);
    std::atomic<int> accepted{0};
    std::atomic<int> received{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&ch, &accepted, p] {
            for (int i = 0; i < 1000; ++i) {
                if (!ch.push(p * 1000 + i))
                    return; // closed mid-stream: expected
                accepted.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    std::vector<std::thread> consumers;
    for (int c = 0; c < 2; ++c) {
        consumers.emplace_back([&ch, &received] {
            while (ch.pop().has_value())
                received.fetch_add(1, std::memory_order_relaxed);
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ch.close();
    for (std::thread &t : producers)
        t.join();
    for (std::thread &t : consumers)
        t.join();
    EXPECT_EQ(received.load(), accepted.load())
        << "accepted items must be delivered exactly once across close";
    EXPECT_EQ(ch.size(), 0u);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Coverage for the telemetry subsystem (src/telemetry/): UnitTrack's
 * watermark interval accounting, the per-unit conservation invariant
 *
 *     busy + sum(stall buckets) + idle == total
 *
 * across the three paper configurations, observation-only behaviour
 * (FrameStats bit-identical at every knob level), the decoupled-mode
 * barrier-wait signature, and the --stats-json exporter.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/stat_registry.hh"
#include "core/gpu.hh"
#include "telemetry/export.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/unit_track.hh"
#include "workloads/scenegen.hh"

#include "json_test_util.hh"

namespace dtexl {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

// ---------- UnitTrack ----------

std::uint64_t
attributed(const EpochTotals &t)
{
    std::uint64_t s = t.busy;
    for (std::uint64_t v : t.stall)
        s += v;
    return s;
}

TEST(UnitTrack, WatermarkClampsOverlappingSpans)
{
    UnitTrack t;
    t.beginEpoch();
    t.span(0, 10, StallReason::MshrFull);
    // Fully below the watermark: contributes nothing.
    t.span(2, 8, StallReason::BankConflict);
    // Straddles it: only [10, 15) lands in the bucket.
    t.span(5, 15, StallReason::BankConflict);
    // busy() clamps the same way.
    t.busy(12, 20);

    const EpochTotals e = t.finalizeEpoch(100);
    EXPECT_EQ(e.stall[static_cast<std::size_t>(StallReason::MshrFull)],
              10u);
    EXPECT_EQ(
        e.stall[static_cast<std::size_t>(StallReason::BankConflict)],
        5u);
    EXPECT_EQ(e.busy, 5u);
    EXPECT_EQ(e.idle, 80u);
    EXPECT_EQ(e.total, 100u);
    EXPECT_EQ(attributed(e) + e.idle, e.total);
}

TEST(UnitTrack, StallCreditsFromWatermark)
{
    UnitTrack t;
    t.beginEpoch();
    t.busy(0, 4);
    t.stall(10, StallReason::BarrierWait);  // [4, 10)
    t.stall(10, StallReason::BarrierWait);  // no-op: wm == 10
    const EpochTotals e = t.finalizeEpoch(10);
    EXPECT_EQ(e.busy, 4u);
    EXPECT_EQ(
        e.stall[static_cast<std::size_t>(StallReason::BarrierWait)], 6u);
    EXPECT_EQ(e.idle, 0u);
    EXPECT_EQ(e.total, 10u);
}

TEST(UnitTrack, DrainedTailExtendsTotal)
{
    // A unit that keeps draining past the phase end must not make the
    // invariant fail: total grows to the covered interval instead.
    UnitTrack t;
    t.beginEpoch();
    t.busy(0, 120);
    const EpochTotals e = t.finalizeEpoch(100);
    EXPECT_EQ(e.total, 120u);
    EXPECT_EQ(e.idle, 0u);
    EXPECT_EQ(attributed(e) + e.idle, e.total);
}

TEST(UnitTrack, EpochsFoldIntoCumulativeTotals)
{
    UnitTrack t;
    t.beginEpoch();
    t.addBusy(30);
    t.add(StallReason::NoReadyWarp, 20);
    t.finalizeEpoch(60);

    t.beginEpoch();
    t.addBusy(10);
    t.finalizeEpoch(40);

    EXPECT_EQ(t.busyCycles(), 40u);
    EXPECT_EQ(t.stallCycles(StallReason::NoReadyWarp), 20u);
    EXPECT_EQ(t.idleCycles(), 10u + 30u);
    EXPECT_EQ(t.totalCycles(), 100u);
    EXPECT_EQ(t.busyCycles() + t.attributedStallCycles() +
                  t.idleCycles(),
              t.totalCycles());
}

// ---------- Whole-simulator integration ----------

struct RunResult
{
    std::vector<FrameStats> frames;
    EpochTotals units[kNumTelemetryUnits];
    std::uint64_t rasterTotal = 0;
};

RunResult
runFrames(GpuConfig cfg, const std::string &alias, int frames,
          StatRegistry *reg = nullptr,
          const std::string &prefix = "run")
{
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    cfg.validate();
    static std::map<std::string, Scene> scenes;
    const std::string key = alias;
    if (!scenes.count(key))
        scenes.emplace(key, generateScene(benchmarkByAlias(alias),
                                          cfg, 0));
    GpuSimulator gpu(cfg, scenes.at(key));
    if (reg)
        gpu.setStatRegistry(reg, prefix);
    RunResult out;
    for (int f = 0; f < frames; ++f) {
        out.frames.push_back(gpu.renderFrame());
        out.rasterTotal += out.frames.back().rasterCycles;
    }
    for (std::size_t u = 0; u < kNumTelemetryUnits; ++u)
        out.units[u] =
            gpu.telemetry().track(static_cast<TelemetryUnit>(u))
                .cumulative();
    return out;
}

/** The conservation invariant on every unit of a finished run. */
void
expectInvariant(const RunResult &r, const char *what)
{
    for (std::size_t u = 0; u < kNumTelemetryUnits; ++u) {
        const EpochTotals &e = r.units[u];
        EXPECT_EQ(attributed(e) + e.idle, e.total)
            << what << " unit " << u;
        // Each epoch's total is at least that frame's raster-phase
        // length, so the cumulative total covers the summed phases.
        EXPECT_GE(e.total, r.rasterTotal) << what << " unit " << u;
    }
}

TEST(TelemetryIntegration, InvariantHoldsOnBaseline)
{
    GpuConfig cfg = makeBaselineConfig();
    cfg.telemetryLevel = 1;
    expectInvariant(runFrames(cfg, "GTr", 2), "baseline");
}

TEST(TelemetryIntegration, InvariantHoldsOnDTexL)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.telemetryLevel = 1;
    expectInvariant(runFrames(cfg, "GTr", 2), "dtexl");
}

TEST(TelemetryIntegration, InvariantHoldsOnUpperBound)
{
    GpuConfig cfg = makeUpperBoundConfig();
    cfg.telemetryLevel = 1;
    expectInvariant(runFrames(cfg, "GTr", 2), "upper-bound");
}

TEST(TelemetryIntegration, InvariantHoldsAtLevelTwo)
{
    GpuConfig cfg = makeBaselineConfig();
    cfg.telemetryLevel = 2;
    cfg.telemetrySamplePeriod = 512;
    expectInvariant(runFrames(cfg, "GTr", 2), "level-2");
}

/** Fields that must not move when telemetry is switched on. */
void
expectSameFrames(const std::vector<FrameStats> &a,
                 const std::vector<FrameStats> &b, const char *what)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t f = 0; f < a.size(); ++f) {
        const FrameStats &x = a[f];
        const FrameStats &y = b[f];
        EXPECT_EQ(x.geometryCycles, y.geometryCycles) << what << f;
        EXPECT_EQ(x.rasterCycles, y.rasterCycles) << what << f;
        EXPECT_EQ(x.totalCycles, y.totalCycles) << what << f;
        EXPECT_EQ(x.quadsRasterized, y.quadsRasterized) << what << f;
        EXPECT_EQ(x.quadsCulledEarlyZ, y.quadsCulledEarlyZ)
            << what << f;
        EXPECT_EQ(x.quadsShaded, y.quadsShaded) << what << f;
        EXPECT_EQ(x.fragmentsShaded, y.fragmentsShaded) << what << f;
        EXPECT_EQ(x.textureSamples, y.textureSamples) << what << f;
        EXPECT_EQ(x.earlyZTests, y.earlyZTests) << what << f;
        EXPECT_EQ(x.blendOps, y.blendOps) << what << f;
        EXPECT_EQ(x.flushLineWrites, y.flushLineWrites) << what << f;
        EXPECT_EQ(x.l1TexAccesses, y.l1TexAccesses) << what << f;
        EXPECT_EQ(x.l1TexMisses, y.l1TexMisses) << what << f;
        EXPECT_EQ(x.l2Accesses, y.l2Accesses) << what << f;
        EXPECT_EQ(x.l2Misses, y.l2Misses) << what << f;
        EXPECT_EQ(x.dramAccesses, y.dramAccesses) << what << f;
        EXPECT_EQ(x.quadsPerSc, y.quadsPerSc) << what << f;
        EXPECT_EQ(x.barrierIdleCycles, y.barrierIdleCycles)
            << what << f;
        EXPECT_EQ(x.imageHash, y.imageHash) << what << f;
    }
}

TEST(TelemetryIntegration, ObservationOnlyAcrossKnobLevels)
{
    // Telemetry derives everything from cycles the pipeline computes
    // anyway: results must be bit-identical at levels 0, 1 and 2.
    for (const bool dtexl : {false, true}) {
        GpuConfig base =
            dtexl ? makeDTexLConfig() : makeBaselineConfig();
        base.telemetryLevel = 0;
        const RunResult off = runFrames(base, "GTr", 2);

        GpuConfig l1 = base;
        l1.telemetryLevel = 1;
        expectSameFrames(off.frames, runFrames(l1, "GTr", 2).frames,
                         dtexl ? "dtexl-l1 frame " : "base-l1 frame ");

        GpuConfig l2 = base;
        l2.telemetryLevel = 2;
        l2.telemetrySamplePeriod = 256;
        expectSameFrames(off.frames, runFrames(l2, "GTr", 2).frames,
                         dtexl ? "dtexl-l2 frame " : "base-l2 frame ");
    }
}

TEST(TelemetryIntegration, DecoupledModeEliminatesBarrierWait)
{
    // The paper's mechanism, visible directly in the attribution: with
    // coupled tile barriers the post-raster units wait for the slowest
    // sibling pipe; decoupling makes every gate a unit's own previous
    // finish, so BarrierWait must measure exactly zero.
    GpuConfig coupled = makeBaselineConfig();
    coupled.telemetryLevel = 1;
    const RunResult c = runFrames(coupled, "GTr", 2);

    GpuConfig dec = makeDTexLConfig();
    dec.telemetryLevel = 1;
    ASSERT_TRUE(dec.decoupledBarriers);
    const RunResult d = runFrames(dec, "GTr", 2);

    const auto bw = [](const EpochTotals &e) {
        return e.stall[static_cast<std::size_t>(
            StallReason::BarrierWait)];
    };

    std::uint64_t coupled_wait = 0;
    for (std::uint32_t p = 0; p < coupled.numPipelines; ++p) {
        coupled_wait += bw(c.units[static_cast<std::size_t>(ezUnit(p))]);
        coupled_wait += bw(c.units[static_cast<std::size_t>(scUnit(p))]);
        coupled_wait +=
            bw(c.units[static_cast<std::size_t>(blendUnit(p))]);
    }
    EXPECT_GT(coupled_wait, 0u);

    for (std::uint32_t p = 0; p < dec.numPipelines; ++p) {
        EXPECT_EQ(bw(d.units[static_cast<std::size_t>(ezUnit(p))]), 0u)
            << "ez" << p;
        EXPECT_EQ(bw(d.units[static_cast<std::size_t>(scUnit(p))]), 0u)
            << "sc" << p;
        EXPECT_EQ(bw(d.units[static_cast<std::size_t>(blendUnit(p))]),
                  0u)
            << "blend" << p;
    }
}

// ---------- Exporter ----------

TEST(TelemetryExportTest, StatsJsonParsesAndHoldsInvariant)
{
    const char *kPath = "test_telemetry_stats.json";
    StatRegistry reg("telemetry-test");
    TelemetryExport::global().setStatsJsonPath(kPath);
    TelemetryExport::global().attachRegistry(&reg);

    GpuConfig cfg = makeBaselineConfig();
    cfg.telemetryLevel = 1;
    runFrames(cfg, "GTr", 1, &reg, "run");
    TelemetryExport::global().flush();

    std::ifstream in(kPath, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    const std::string text = os.str();
    ASSERT_FALSE(text.empty());

    JsonValue doc;
    ASSERT_TRUE(JsonParser(text).parse(doc)) << text;
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);
    EXPECT_EQ(doc.members.at("schema").str, "dtexl-stats-v1");
    EXPECT_EQ(doc.members.at("registry").str, "telemetry-test");

    const JsonValue &nodes = doc.members.at("nodes");
    ASSERT_EQ(nodes.kind, JsonValue::Kind::Object);

    // Every published telemetry node must carry the closed key set and
    // satisfy the conservation invariant after the JSON round trip.
    int telemetry_nodes = 0;
    for (const auto &[path, node] : nodes.members) {
        if (path.find(".telemetry.") == std::string::npos)
            continue;
        ++telemetry_nodes;
        ASSERT_EQ(node.kind, JsonValue::Kind::Object) << path;
        std::uint64_t sum = 0;
        for (const auto &[key, val] : node.members) {
            ASSERT_EQ(val.kind, JsonValue::Kind::Number) << path;
            if (key != "total")
                sum += static_cast<std::uint64_t>(val.number);
        }
        ASSERT_TRUE(node.members.count("total")) << path;
        EXPECT_EQ(sum, static_cast<std::uint64_t>(
                           node.members.at("total").number))
            << path;
    }
    EXPECT_EQ(telemetry_nodes, static_cast<int>(kNumTelemetryUnits));

    std::remove(kPath);
}

} // namespace
} // namespace dtexl

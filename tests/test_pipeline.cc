/**
 * @file
 * Integration tests for the Raster Pipeline + GPU simulator on small
 * scenes: functional correctness of the final image (reference
 * rasterization, scheduler-independence, coupled == decoupled), Early-Z
 * culling, the Late-Z path, and barrier timing semantics.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/gpu.hh"
#include "mem/address_map.hh"
#include "raster/rasterizer.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 128;
    cfg.screenHeight = 64;
    return cfg;
}

/** Reference renderer: per-pixel painter with depth test. */
std::vector<PixelColor>
referenceRender(const GpuConfig &cfg, const Scene &scene)
{
    std::vector<PixelColor> image(
        std::size_t{cfg.screenWidth} * cfg.screenHeight, kClearColor);
    std::vector<float> depth(image.size(), 1.0f);

    // Reproduce the geometry pipeline functionally.
    PrimAssembler assembler(cfg);
    MemHierarchy mem(cfg);
    VertexStage vstage(cfg, mem);
    std::vector<Primitive> prims;
    std::vector<TransformedVertex> tv;
    for (const DrawCommand &draw : scene.draws) {
        vstage.processDraw(draw, 0, tv);
        assembler.assemble(draw, tv, scene.texture(draw.texture).side(),
                           prims);
    }

    for (const Primitive &prim : prims) {
        for (std::uint32_t py = 0; py < cfg.screenHeight; ++py) {
            for (std::uint32_t px = 0; px < cfg.screenWidth; ++px) {
                if (!Rasterizer::pixelCovered(prim, px, py))
                    continue;
                // Interpolate depth exactly as the rasterizer does.
                std::vector<Quad> quads;
                // (depth via quad interpolation is checked separately;
                // here recompute barycentrically)
                const Vec2f p{static_cast<float>(px) + 0.5f,
                              static_cast<float>(py) + 0.5f};
                const Vec2f a = prim.v[0].screen, b = prim.v[1].screen,
                            c = prim.v[2].screen;
                const float area =
                    cross2(b - a, c - a);
                const float w0 = cross2(c - b, p - b) / area;
                const float w1 = cross2(a - c, p - c) / area;
                const float w2 = 1.0f - w0 - w1;
                const float z = w0 * prim.v[0].depth +
                                w1 * prim.v[1].depth +
                                w2 * prim.v[2].depth;
                const std::size_t idx =
                    std::size_t{py} * cfg.screenWidth + px;
                if (!(z < depth[idx]))
                    continue;
                const unsigned k = (px % 2) + 2 * (py % 2);
                image[idx] = blendPixel(image[idx],
                                        shadeColor(prim.id, k),
                                        prim.shader.blends);
                if (!prim.shader.blends)
                    depth[idx] = z;
            }
        }
    }
    return image;
}

std::uint64_t
hashImage(const std::vector<PixelColor> &img)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (PixelColor c : img) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

TEST(Pipeline, MatchesReferenceRenderOpaque)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = makeTinyScene(cfg);
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    const auto ref = referenceRender(cfg, scene);
    EXPECT_EQ(fs.imageHash, hashImage(ref));
}

TEST(Pipeline, MatchesReferenceOnGeneratedScene)
{
    GpuConfig cfg = smallCfg();
    BenchmarkParams p = benchmarkByAlias("SWa");
    const Scene scene = generateScene(p, cfg);
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    const auto ref = referenceRender(cfg, scene);
    EXPECT_EQ(fs.imageHash, hashImage(ref));
}

class SchedulerInvarianceTest
    : public ::testing::TestWithParam<QuadGrouping>
{};

TEST_P(SchedulerInvarianceTest, ImageIndependentOfGrouping)
{
    // The image must not depend on which SC shades which quad.
    GpuConfig base = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SWa"), base);

    GpuSimulator ref_gpu(base, scene);
    const std::uint64_t ref = ref_gpu.renderFrame().imageHash;

    GpuConfig cfg = base;
    cfg.grouping = GetParam();
    cfg.tileOrder = TileOrder::RectHilbert;
    cfg.assignment = SubtileAssignment::Flip2;
    GpuSimulator gpu(cfg, scene);
    EXPECT_EQ(gpu.renderFrame().imageHash, ref) << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllGroupings, SchedulerInvarianceTest,
                         ::testing::ValuesIn(kAllQuadGroupings));

TEST(Pipeline, DecoupledProducesIdenticalImage)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("CCS"), cfg);

    GpuConfig coupled = cfg;
    coupled.decoupledBarriers = false;
    GpuConfig decoupled = cfg;
    decoupled.decoupledBarriers = true;
    decoupled.grouping = QuadGrouping::CGSquare;
    decoupled.assignment = SubtileAssignment::Flip2;

    GpuSimulator a(coupled, scene), b(decoupled, scene);
    EXPECT_EQ(a.renderFrame().imageHash, b.renderFrame().imageHash);
}

TEST(Pipeline, SinglePipeUpperBoundSameImage)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SWa"), cfg);
    GpuSimulator four(cfg, scene);

    GpuConfig ub = makeUpperBoundConfig();
    ub.screenWidth = cfg.screenWidth;
    ub.screenHeight = cfg.screenHeight;
    GpuSimulator one(ub, scene);
    EXPECT_EQ(four.renderFrame().imageHash, one.renderFrame().imageHash);
}

TEST(Pipeline, EarlyZCullsHiddenQuads)
{
    GpuConfig cfg = smallCfg();
    Scene scene;
    scene.textures.emplace_back(0, addr_map::kTextureBase, 64);
    ShaderDesc opaque;
    opaque.aluOps = 4;
    opaque.texSamples = 1;

    // Near rectangle first, far second: the far one is fully hidden
    // and must be culled by Early-Z.
    auto rect = [&](float depth) {
        DrawCommand d;
        d.texture = 0;
        d.shader = opaque;
        d.vertexBufferAddr = addr_map::kVertexBase;
        const float x0 = -0.5f, x1 = 0.5f, y0 = -0.5f, y1 = 0.5f;
        const float z = depth * 2 - 1;
        d.vertices = {Vertex{{x0, y0, z, 1}, {0, 0}},
                      Vertex{{x1, y0, z, 1}, {1, 0}},
                      Vertex{{x0, y1, z, 1}, {0, 1}},
                      Vertex{{x1, y1, z, 1}, {1, 1}}};
        d.indices = {0, 1, 2, 2, 1, 3};
        return d;
    };
    scene.draws.push_back(rect(0.2f));
    scene.draws.push_back(rect(0.8f));

    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    EXPECT_GT(fs.quadsCulledEarlyZ, 0u);
    // The hidden layer is the same size as the visible one.
    EXPECT_GE(fs.quadsCulledEarlyZ, fs.quadsShaded / 2);
}

TEST(Pipeline, TransparentQuadsAreNotCulled)
{
    GpuConfig cfg = smallCfg();
    Scene scene;
    scene.textures.emplace_back(0, addr_map::kTextureBase, 64);
    ShaderDesc sh;
    sh.aluOps = 4;
    sh.texSamples = 1;

    auto rect = [&](float depth, bool blends) {
        DrawCommand d;
        d.texture = 0;
        d.shader = sh;
        d.shader.blends = blends;
        d.vertexBufferAddr = addr_map::kVertexBase;
        const float z = depth * 2 - 1;
        d.vertices = {Vertex{{-0.5f, -0.5f, z, 1}, {0, 0}},
                      Vertex{{0.5f, -0.5f, z, 1}, {1, 0}},
                      Vertex{{-0.5f, 0.5f, z, 1}, {0, 1}},
                      Vertex{{0.5f, 0.5f, z, 1}, {1, 1}}};
        d.indices = {0, 1, 2, 2, 1, 3};
        return d;
    };
    // Opaque near, then transparent far: transparent fails the depth
    // test and is correctly culled. Transparent near over opaque far:
    // passes and blends.
    scene.draws.push_back(rect(0.5f, false));
    scene.draws.push_back(rect(0.2f, true));
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    EXPECT_EQ(fs.quadsCulledEarlyZ, 0u);
    EXPECT_GT(fs.blendOps, 0u);
}

TEST(Pipeline, LateZPathMatchesEarlyZImage)
{
    GpuConfig cfg = smallCfg();
    Scene scene = makeTinyScene(cfg);
    GpuSimulator early(cfg, scene);
    const std::uint64_t ref = early.renderFrame().imageHash;

    // Same scene with depth-modifying shaders: Early-Z disabled, the
    // Late Z-Test must produce the same image (our shaders do not
    // actually change depth values).
    Scene late_scene = scene;
    for (DrawCommand &d : late_scene.draws)
        d.shader.modifiesDepth = true;
    GpuSimulator late(cfg, late_scene);
    const FrameStats fs = late.renderFrame();
    EXPECT_EQ(fs.imageHash, ref);
    EXPECT_EQ(fs.quadsCulledEarlyZ, 0u);  // Early-Z disabled
}

TEST(Pipeline, DecoupledNeverSlower)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("TRu"), cfg);
    for (QuadGrouping g :
         {QuadGrouping::FGXShift2, QuadGrouping::CGSquare}) {
        GpuConfig coupled = cfg;
        coupled.grouping = g;
        GpuConfig dec = coupled;
        dec.decoupledBarriers = true;
        GpuSimulator a(coupled, scene), b(dec, scene);
        const Cycle ta = a.renderFrame().rasterCycles;
        const Cycle tb = b.renderFrame().rasterCycles;
        EXPECT_LE(tb, ta + ta / 50) << toString(g);
    }
}

TEST(Pipeline, DeterministicRepeatRuns)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg);
    GpuSimulator a(cfg, scene), b(cfg, scene);
    const FrameStats fa = a.renderFrame();
    const FrameStats fb = b.renderFrame();
    EXPECT_EQ(fa.totalCycles, fb.totalCycles);
    EXPECT_EQ(fa.l2Accesses, fb.l2Accesses);
    EXPECT_EQ(fa.imageHash, fb.imageHash);
}

TEST(Pipeline, SecondFrameWarmerThanFirst)
{
    GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SWa"), cfg);
    GpuSimulator gpu(cfg, scene);
    const FrameStats f1 = gpu.renderFrame();
    const FrameStats f2 = gpu.renderFrame();
    EXPECT_EQ(f1.imageHash, f2.imageHash);
    EXPECT_LE(f2.l2Accesses, f1.l2Accesses);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for texture descriptors (mip chains, Morton-tiled layout) and
 * sampling footprints (filter widths, wrap addressing, cache-line
 * dedup, and the adjacent-quad line-sharing property that underpins
 * the whole paper).
 */

#include <gtest/gtest.h>

#include <set>

#include "texture/sampler.hh"
#include "texture/texture.hh"

namespace dtexl {
namespace {

TEST(Texture, MipChainGeometry)
{
    TextureDesc t(0, 0x1000, 256);
    EXPECT_EQ(t.numMipLevels(), 9u);  // 256..1
    EXPECT_EQ(t.levelSide(0), 256u);
    EXPECT_EQ(t.levelSide(1), 128u);
    EXPECT_EQ(t.levelSide(8), 1u);
    // Total = 4 * (256^2 + 128^2 + ... + 1).
    std::uint64_t expect = 0;
    for (std::uint32_t s = 256; s >= 1; s /= 2) {
        expect += std::uint64_t{s} * s * 4;
        if (s == 1)
            break;
    }
    EXPECT_EQ(t.totalBytes(), expect);
}

TEST(Texture, MipLevelsDisjointAndOrdered)
{
    TextureDesc t(0, 0x1000, 64);
    const Addr l0_first = t.texelAddr(0, 0, 0);
    const Addr l0_last = t.texelAddr(0, 63, 63);
    const Addr l1_first = t.texelAddr(1, 0, 0);
    EXPECT_EQ(l0_first, 0x1000u);
    EXPECT_LT(l0_last, l1_first);
    EXPECT_EQ(l1_first, 0x1000u + 64 * 64 * 4);
}

TEST(Texture, MortonTiledLayout)
{
    TextureDesc t(0, 0, 64);
    // A 4x4 texel block occupies exactly one 64 B line.
    std::set<Addr> lines;
    for (std::uint32_t y = 8; y < 12; ++y)
        for (std::uint32_t x = 4; x < 8; ++x)
            lines.insert(t.texelAddr(0, x, y) / 64);
    EXPECT_EQ(lines.size(), 1u);

    // Crossing the block boundary switches line.
    EXPECT_NE(t.texelAddr(0, 3, 8) / 64, t.texelAddr(0, 4, 8) / 64);
}

TEST(Sampler, TexelsPerSample)
{
    EXPECT_EQ(texelsPerSample(FilterMode::Nearest), 1u);
    EXPECT_EQ(texelsPerSample(FilterMode::Bilinear), 4u);
    EXPECT_EQ(texelsPerSample(FilterMode::Trilinear), 8u);
    EXPECT_EQ(texelsPerSample(FilterMode::Aniso2x), 8u);
}

class FilterFootprintTest
    : public ::testing::TestWithParam<FilterMode>
{};

TEST_P(FilterFootprintTest, FootprintSizeMatchesFilter)
{
    TextureDesc t(0, 0, 128);
    const SampleFootprint fp =
        sampleFootprint(t, GetParam(), 0.37f, 0.61f, 0.0f);
    EXPECT_EQ(fp.count, texelsPerSample(GetParam()));
    for (std::uint32_t i = 0; i < fp.count; ++i) {
        EXPECT_GE(fp.texels[i], t.baseAddr());
        EXPECT_LT(fp.texels[i], t.baseAddr() + t.totalBytes());
    }
}

INSTANTIATE_TEST_SUITE_P(AllFilters, FilterFootprintTest,
                         ::testing::Values(FilterMode::Nearest,
                                           FilterMode::Bilinear,
                                           FilterMode::Trilinear,
                                           FilterMode::Aniso2x));

TEST(Sampler, BilinearTapIsTwoByTwo)
{
    TextureDesc t(0, 0, 64);
    // Sample exactly between texels (10,20),(11,20),(10,21),(11,21).
    const float u = 11.0f / 64.0f;
    const float v = 21.0f / 64.0f;
    const SampleFootprint fp =
        sampleFootprint(t, FilterMode::Bilinear, u, v, 0.0f);
    std::set<Addr> expect = {
        t.texelAddr(0, 10, 20), t.texelAddr(0, 11, 20),
        t.texelAddr(0, 10, 21), t.texelAddr(0, 11, 21)};
    std::set<Addr> got(fp.texels.begin(), fp.texels.begin() + fp.count);
    EXPECT_EQ(got, expect);
}

TEST(Sampler, TrilinearTouchesTwoMips)
{
    TextureDesc t(0, 0, 64);
    const SampleFootprint fp =
        sampleFootprint(t, FilterMode::Trilinear, 0.5f, 0.5f, 1.3f);
    bool in_l1 = false, in_l2 = false;
    const Addr l1_base = t.texelAddr(1, 0, 0);
    const Addr l2_base = t.texelAddr(2, 0, 0);
    const Addr l3_base = t.texelAddr(3, 0, 0);
    for (std::uint32_t i = 0; i < fp.count; ++i) {
        in_l1 |= fp.texels[i] >= l1_base && fp.texels[i] < l2_base;
        in_l2 |= fp.texels[i] >= l2_base && fp.texels[i] < l3_base;
    }
    EXPECT_TRUE(in_l1);
    EXPECT_TRUE(in_l2);
}

TEST(Sampler, WrapAddressing)
{
    TextureDesc t(0, 0, 32);
    // u slightly negative wraps to the right edge; no out-of-range
    // texels (the descriptor asserts internally).
    const SampleFootprint fp =
        sampleFootprint(t, FilterMode::Bilinear, -0.01f, 0.5f, 0.0f);
    EXPECT_EQ(fp.count, 4u);
    const SampleFootprint fp2 =
        sampleFootprint(t, FilterMode::Bilinear, 1.49f, 2.75f, 0.0f);
    EXPECT_EQ(fp2.count, 4u);
}

TEST(Sampler, LodClampsToChain)
{
    TextureDesc t(0, 0, 16);  // 5 levels
    const SampleFootprint fp =
        sampleFootprint(t, FilterMode::Trilinear, 0.5f, 0.5f, 99.0f);
    // All texels must fall in the last levels, never past the chain.
    for (std::uint32_t i = 0; i < fp.count; ++i)
        EXPECT_LT(fp.texels[i], t.totalBytes());
}

TEST(Sampler, FootprintLinesDedup)
{
    TextureDesc t(0, 0, 64);
    // A bilinear tap interior to one 4x4 Morton block: 4 texels, one
    // line.
    const float u = 1.5f / 64.0f;
    const float v = 1.5f / 64.0f;
    const SampleFootprint fp =
        sampleFootprint(t, FilterMode::Bilinear, u, v, 0.0f);
    std::array<Addr, SampleFootprint::kMaxTexels> lines;
    EXPECT_EQ(footprintLines(fp, 64, lines), 1u);
}

TEST(Sampler, AdjacentQuadsShareCacheLines)
{
    // The paper's core claim (Section II-B): at ~1 texel/pixel,
    // adjacent quads' footprints overlap in cache lines.
    TextureDesc t(0, 0, 256);
    const float scale = 1.0f / 256.0f;  // 1 texel per pixel
    auto lines_at = [&](float px, float py) {
        std::set<Addr> s;
        for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
                const SampleFootprint fp = sampleFootprint(
                    t, FilterMode::Bilinear,
                    (px + static_cast<float>(dx) + 0.5f) * scale,
                    (py + static_cast<float>(dy) + 0.5f) * scale, 0.0f);
                for (std::uint32_t i = 0; i < fp.count; ++i)
                    s.insert(fp.texels[i] / 64);
            }
        }
        return s;
    };
    int shared_pairs = 0;
    for (int q = 0; q < 16; ++q) {
        const float px = static_cast<float>(16 + q * 2);
        const std::set<Addr> a = lines_at(px, 32.0f);
        const std::set<Addr> b = lines_at(px + 2.0f, 32.0f);
        for (Addr l : a)
            if (b.count(l)) {
                ++shared_pairs;
                break;
            }
    }
    // Most horizontally adjacent quads share at least one line.
    EXPECT_GE(shared_pairs, 10);
}

} // namespace
} // namespace dtexl

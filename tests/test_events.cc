/**
 * @file
 * Run-event ledger tests (obs/event_bus.hh): the JSONL ledger must be
 * well-formed line by line, bracketed by run_start/run_end with a
 * monotonic seq, carry the full batch lifecycle (submit → start →
 * frame → complete), mirror the cache manifest as events, survive a
 * failing job with a valid job_error line already flushed to disk,
 * and hold content-identical events for any worker count. Arming the
 * bus must never change a simulated statistic.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <unistd.h>
#include <vector>

#include "cache/result_store.hh"
#include "common/log.hh"
#include "common/serial.hh"
#include "common/sim_error.hh"
#include "core/dtexl.hh"
#include "json_test_util.hh"
#include "obs/event_bus.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

using testjson::JsonParser;
using testjson::JsonValue;

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "dtexl_events_" + name + "." +
           std::to_string(::getpid()) + ".jsonl";
}

/** Parse every non-empty ledger line; any syntax error fails here. */
std::vector<JsonValue>
readLedger(const std::string &path)
{
    std::vector<JsonValue> events;
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        JsonValue v;
        JsonParser parser(line);
        EXPECT_TRUE(parser.parse(v)) << "bad JSON line: " << line;
        events.push_back(std::move(v));
    }
    return events;
}

std::string
eventName(const JsonValue &v)
{
    auto it = v.members.find("event");
    return it == v.members.end() ? "" : it->second.str;
}

std::map<std::string, int>
countByEvent(const std::vector<JsonValue> &events)
{
    std::map<std::string, int> counts;
    for (const JsonValue &v : events)
        ++counts[eventName(v)];
    return counts;
}

/** Two jobs x two frames over the given worker count. */
std::vector<BatchResult>
runSmallBatch(const std::vector<std::vector<Scene>> &scenes,
              unsigned workers)
{
    std::vector<BatchJob> jobs;
    const char *labels[] = {"Mze", "CRa"};
    for (std::size_t j = 0; j < scenes.size(); ++j) {
        BatchJob bj;
        bj.label = labels[j];
        bj.cfg = smallCfg();
        const std::vector<Scene> *s = &scenes[j];
        bj.scene = [s](std::uint32_t f) -> const Scene & {
            return (*s)[f];
        };
        bj.frames = static_cast<std::uint32_t>(s->size());
        jobs.push_back(std::move(bj));
    }
    return runBatch(jobs, workers, nullptr);
}

std::vector<std::vector<Scene>>
makeScenes()
{
    std::vector<std::vector<Scene>> scenes;
    for (const char *alias : {"Mze", "CRa"}) {
        scenes.emplace_back();
        for (std::uint32_t f = 0; f < 2; ++f)
            scenes.back().push_back(
                generateScene(benchmarkByAlias(alias), smallCfg(), f));
    }
    return scenes;
}

class EventBusTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        setLogQuiet(true);
        EventBus::global().resetForTests();
    }

    void
    TearDown() override
    {
        EventBus::global().resetForTests();
        ResultCache::global().resetForTests();
        setLogQuiet(false);
    }
};

TEST_F(EventBusTest, LedgerIsWellFormedAndComplete)
{
    const std::string path = tempPath("complete");
    EventBus::global().enable(path);
    EventBus::global().emitRunStart(0x1111, 0x2222, "auto");

    const auto scenes = makeScenes();
    const std::vector<BatchResult> results = runSmallBatch(scenes, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].ok);
    EXPECT_TRUE(results[1].ok);
    EventBus::global().finish();

    const std::vector<JsonValue> events = readLedger(path);
    ASSERT_GE(events.size(), 2u);

    // Bracketing and the schema marker on the first line.
    EXPECT_EQ(eventName(events.front()), "run_start");
    EXPECT_EQ(events.front().members.at("schema").str,
              "dtexl-events-v1");
    EXPECT_EQ(events.front().members.at("config").str,
              "0000000000001111");
    EXPECT_EQ(eventName(events.back()), "run_end");

    // seq is exactly 0..N-1 in file order (single-writer contract).
    for (std::size_t i = 0; i < events.size(); ++i)
        EXPECT_EQ(events[i].members.at("seq").number,
                  static_cast<double>(i))
            << "at line " << i;

    // Full lifecycle: 2 submits, 2 starts, 4 frames, 2 completes.
    std::map<std::string, int> counts = countByEvent(events);
    EXPECT_EQ(counts["job_submit"], 2);
    EXPECT_EQ(counts["job_start"], 2);
    EXPECT_EQ(counts["job_frame"], 4);
    EXPECT_EQ(counts["job_complete"], 2);
    EXPECT_EQ(counts["job_error"], 0);

    // run_end totals agree with the counted events.
    const JsonValue &end = events.back();
    EXPECT_EQ(end.members.at("jobs").number, 2.0);
    EXPECT_EQ(end.members.at("ok").number, 2.0);
    EXPECT_EQ(end.members.at("failed").number, 0.0);
    EXPECT_EQ(end.members.at("frames").number, 4.0);

    // Every job-scoped event names its job.
    for (const JsonValue &v : events) {
        const std::string name = eventName(v);
        if (name == "run_start" || name == "run_end")
            continue;
        ASSERT_TRUE(v.members.count("job")) << name;
        const std::string &job = v.members.at("job").str;
        EXPECT_TRUE(job == "Mze" || job == "CRa") << job;
    }

    std::remove(path.c_str());
}

TEST_F(EventBusTest, ContentIdenticalForAnyWorkerCount)
{
    const auto scenes = makeScenes();
    std::map<std::string, int> counts[2];
    std::string paths[2];
    const unsigned workers[2] = {1, 2};
    for (int i = 0; i < 2; ++i) {
        paths[i] = tempPath("workers" + std::to_string(workers[i]));
        EventBus::global().resetForTests();
        EventBus::global().enable(paths[i]);
        runSmallBatch(scenes, workers[i]);
        EventBus::global().finish();
        counts[i] = countByEvent(readLedger(paths[i]));
    }
    // Same multiset of events whatever the interleaving; seq order and
    // timestamps are the only legitimate differences (run_report.py
    // --canon strips exactly those for full-line comparison in CI).
    EXPECT_EQ(counts[0], counts[1]);
    std::remove(paths[0].c_str());
    std::remove(paths[1].c_str());
}

TEST_F(EventBusTest, FailingJobLeavesValidLedgerWithJobError)
{
    const std::string path = tempPath("fault");
    EventBus::global().enable(path);

    const auto scenes = makeScenes();
    std::vector<BatchJob> jobs;
    BatchJob ok;
    ok.label = "Mze";
    ok.cfg = smallCfg();
    const std::vector<Scene> *s = &scenes[0];
    ok.scene = [s](std::uint32_t f) -> const Scene & { return (*s)[f]; };
    ok.frames = 1;
    jobs.push_back(std::move(ok));

    BatchJob bad;
    bad.label = "broken";
    bad.cfg = smallCfg();
    bad.scene = [](std::uint32_t) -> const Scene & {
        throwUserError("scene provider exploded");
    };
    bad.frames = 1;
    jobs.push_back(std::move(bad));

    const std::vector<BatchResult> results = runBatch(jobs, 2, nullptr);
    EXPECT_TRUE(results[0].ok);
    EXPECT_FALSE(results[1].ok);

    // The failure path flushed through the failure-flush hook: the
    // job_error line is on disk BEFORE finish() closes the ledger.
    {
        const std::vector<JsonValue> mid = readLedger(path);
        EXPECT_EQ(countByEvent(mid)["job_error"], 1);
    }

    EventBus::global().finish();
    const std::vector<JsonValue> events = readLedger(path);
    EXPECT_EQ(eventName(events.back()), "run_end");
    std::map<std::string, int> counts = countByEvent(events);
    EXPECT_EQ(counts["job_error"], 1);
    EXPECT_EQ(counts["job_complete"], 1);
    const JsonValue &end = events.back();
    EXPECT_EQ(end.members.at("failed").number, 1.0);
    EXPECT_EQ(end.members.at("ok").number, 1.0);

    for (const JsonValue &v : events) {
        if (eventName(v) != "job_error")
            continue;
        EXPECT_EQ(v.members.at("job").str, "broken");
        EXPECT_EQ(v.members.at("kind").str, "user-input");
        EXPECT_NE(v.members.at("error").str.find("exploded"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST_F(EventBusTest, CacheTrafficMirroredAsEvents)
{
    const std::string path = tempPath("cache");
    const std::string cache_dir =
        ::testing::TempDir() + "dtexl_events_cache." +
        std::to_string(::getpid());
    ensureDirectory(cache_dir);
    EventBus::global().enable(path);
    ResultCache::global().resetForTests();
    ResultCache::global().configure(cache_dir, CacheMode::ReadWrite, 0,
                                    false);

    const auto scenes = makeScenes();
    runSmallBatch(scenes, 1);  // cold: misses + stores
    runSmallBatch(scenes, 1);  // warm: hits
    EventBus::global().finish();

    std::map<std::string, int> counts =
        countByEvent(readLedger(path));
    EXPECT_EQ(counts["job_cache_miss"], 2);
    EXPECT_EQ(counts["job_cache_store"], 2);
    EXPECT_EQ(counts["job_cache_hit"], 2);
    // Warm jobs complete without rendering: 4 frames, not 8.
    EXPECT_EQ(counts["job_frame"], 4);
    std::remove(path.c_str());
}

TEST_F(EventBusTest, ArmingTheBusNeverChangesResults)
{
    const auto scenes = makeScenes();
    const std::vector<BatchResult> plain = runSmallBatch(scenes, 1);

    const std::string path = tempPath("identity");
    EventBus::global().enable(path);
    const std::vector<BatchResult> armed = runSmallBatch(scenes, 1);
    EventBus::global().finish();

    ASSERT_EQ(plain.size(), armed.size());
    for (std::size_t j = 0; j < plain.size(); ++j) {
        ASSERT_EQ(plain[j].frames.size(), armed[j].frames.size());
        for (std::size_t f = 0; f < plain[j].frames.size(); ++f) {
            EXPECT_EQ(plain[j].frames[f].totalCycles,
                      armed[j].frames[f].totalCycles);
            EXPECT_EQ(plain[j].frames[f].imageHash,
                      armed[j].frames[f].imageHash);
        }
    }
    std::remove(path.c_str());
}

TEST_F(EventBusTest, ProgressLineReachesStderr)
{
    ::testing::internal::CaptureStderr();
    EventBus::global().enableProgress();
    const auto scenes = makeScenes();
    runSmallBatch(scenes, 1);
    EventBus::global().finish();
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("progress:"), std::string::npos) << err;
    EXPECT_NE(err.find("frames/s"), std::string::npos) << err;
}

TEST_F(EventBusTest, FlushIsSafeWhenDisarmed)
{
    // The failure-flush hook may fire in a process that never armed
    // the bus; both calls must be harmless no-ops.
    EventBus::global().flush();
    EventBus::global().finish();
    EXPECT_FALSE(EventBus::armed());
}

} // namespace
} // namespace dtexl

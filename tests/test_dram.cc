/**
 * @file
 * Tests for the banked DRAM model: row-buffer hit/miss latencies
 * (Table II's 50-100 cycle window), bank conflicts, channel bandwidth,
 * and stat accounting.
 */

#include <gtest/gtest.h>

#include "mem/dram.hh"

namespace dtexl {
namespace {

DramConfig
cfg()
{
    DramConfig c;
    c.numBanks = 4;
    c.rowBytes = 2048;
    c.rowHitLatency = 50;
    c.rowMissLatency = 100;
    c.bytesPerCycle = 16;
    return c;
}

TEST(Dram, FirstAccessIsRowMiss)
{
    Dram d(cfg());
    EXPECT_EQ(d.access(0, AccessType::Read, 0), 100u);
    EXPECT_EQ(d.stats().get("row_miss"), 1u);
}

TEST(Dram, SameRowHits)
{
    Dram d(cfg());
    const Cycle t1 = d.access(0, AccessType::Read, 0);
    // Next access in the same 2 KiB row: open-row latency.
    const Cycle t2 = d.access(1024, AccessType::Read, t1);
    EXPECT_EQ(t2, t1 + 50);
    EXPECT_EQ(d.stats().get("row_hit"), 1u);
}

TEST(Dram, RowConflictReopens)
{
    Dram d(cfg());
    const Cycle t1 = d.access(0, AccessType::Read, 0);
    // Row-linear 9 XOR-folds back onto bank 0 (9 ^ (9/4) = 11, 11 % 4
    // = 3... pick a row that collides: search below finds one), with a
    // different row id: the open row must be reopened.
    // With numBanks=4: row 0 -> fold 0 -> bank 0. Find r>0, bank 0.
    std::uint64_t r = 1;
    while (((r ^ (r / 4) ^ (r / 16)) % 4) != 0)
        ++r;
    const Cycle t2 = d.access(r * 2048, AccessType::Read, t1);
    EXPECT_EQ(t2, t1 + 100);
    EXPECT_EQ(d.stats().get("row_miss"), 2u);
}

TEST(Dram, DifferentBanksOverlap)
{
    Dram d(cfg());
    const Cycle t1 = d.access(0, AccessType::Read, 0);       // bank 0
    const Cycle t2 = d.access(2048, AccessType::Read, 0);    // bank 1
    EXPECT_EQ(t1, 100u);
    // Independent banks overlap fully within the channel window.
    EXPECT_EQ(t2, 100u);
}

TEST(Dram, ChannelBandwidthBoundsBursts)
{
    // The channel admits 16 transfers per 16-burst window; the 17th
    // concurrent transfer is pushed a whole window out.
    DramConfig c = cfg();
    c.numBanks = 32;  // isolate the channel from bank conflicts
    Dram d(c);
    // 17 accesses to 17 distinct banks, all issued at cycle 0.
    std::vector<Cycle> done;
    for (std::uint64_t i = 0; i < 17; ++i)
        done.push_back(d.access(i * 2048, AccessType::Read, 0));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(done[i], 100u) << i;
    // burst = 64/16 = 4 cycles; window = 16 * 4 = 64.
    EXPECT_EQ(done[16], 164u);
    EXPECT_GE(d.stats().get("channel_stall"), 1u);
}

TEST(Dram, RowMissOccupiesBankForActivate)
{
    Dram d(cfg());
    const Cycle t1 = d.access(0, AccessType::Read, 0);
    EXPECT_EQ(t1, 100u);
    // Same bank, same row, issued before the activate window ends
    // (burst 4 + activate 50): starts at 54, open-row latency 50.
    const Cycle t2 = d.access(64, AccessType::Read, 10);
    EXPECT_EQ(t2, 104u);
}

TEST(Dram, OpenRowReadsPipelineAtBurstRate)
{
    Dram d(cfg());
    d.access(0, AccessType::Read, 0);
    // After the activate window, back-to-back open-row reads stream
    // one burst (4 cycles) apart despite the 50-cycle latency.
    Cycle prev = d.access(64, AccessType::Read, 60);
    for (int i = 2; i < 8; ++i) {
        const Cycle t =
            d.access(static_cast<Addr>(i) * 64, AccessType::Read, 60);
        EXPECT_EQ(t, prev + 4);
        prev = t;
    }
}

TEST(Dram, AccessCountsByType)
{
    Dram d(cfg());
    d.access(0, AccessType::Read, 0);
    d.access(64, AccessType::Write, 200);
    d.access(128, AccessType::Read, 400);
    EXPECT_EQ(d.stats().get("read"), 2u);
    EXPECT_EQ(d.stats().get("write"), 1u);
    EXPECT_EQ(d.accesses(), 3u);
}

TEST(Dram, ResetClearsTimingNotStats)
{
    Dram d(cfg());
    d.access(0, AccessType::Read, 0);
    d.reset();
    // After reset the bank has no open row again.
    EXPECT_EQ(d.access(0, AccessType::Read, 0), 100u);
    EXPECT_EQ(d.accesses(), 2u);
}

TEST(Dram, LatencyWithinTableTwoWindow)
{
    Dram d(cfg());
    Cycle now = 0;
    for (int i = 0; i < 200; ++i) {
        const Addr a = static_cast<Addr>(i) * 977 * 64;
        const Cycle done = d.access(a, AccessType::Read, now);
        const Cycle lat = done - now;
        EXPECT_GE(lat, 50u);
        now = done;
    }
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for the geometry module: vector/matrix math, the timed Vertex
 * Stage (viewport mapping + vertex-cache traffic) and the Primitive
 * Assembler (culling, LOD setup).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "geom/prim_assembler.hh"
#include "geom/scene.hh"
#include "geom/vertex_stage.hh"
#include "mem/address_map.hh"
#include "mem/hierarchy.hh"

namespace dtexl {
namespace {

TEST(Vec, CrossAndDot)
{
    EXPECT_FLOAT_EQ(cross2({1, 0}, {0, 1}), 1.0f);
    EXPECT_FLOAT_EQ(cross2({0, 1}, {1, 0}), -1.0f);
    EXPECT_FLOAT_EQ(dot(Vec2f{3, 4}, Vec2f{3, 4}), 25.0f);
    EXPECT_FLOAT_EQ(dot(Vec3f{1, 2, 3}, Vec3f{4, 5, 6}), 32.0f);
}

TEST(Mat4, IdentityAndTranslate)
{
    const Vec4f v{1, 2, 3, 1};
    const Vec4f i = Mat4::identity().apply(v);
    EXPECT_EQ(i, v);
    const Vec4f t = Mat4::translate(10, 20, 30).apply(v);
    EXPECT_EQ(t, (Vec4f{11, 22, 33, 1}));
}

TEST(Mat4, ComposeScaleTranslate)
{
    const Mat4 m = Mat4::translate(1, 0, 0) * Mat4::scale(2, 2, 2);
    const Vec4f r = m.apply({1, 1, 1, 1});
    EXPECT_EQ(r, (Vec4f{3, 2, 2, 1}));
}

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 128;
    cfg.screenHeight = 64;
    return cfg;
}

TEST(VertexStage, ViewportMapping)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);

    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    draw.vertices = {
        Vertex{{-1.0f, -1.0f, 0.0f, 1.0f}, {0.0f, 0.0f}},
        Vertex{{1.0f, 1.0f, 1.0f, 1.0f}, {1.0f, 1.0f}},
        Vertex{{0.0f, 0.0f, -1.0f, 1.0f}, {0.5f, 0.5f}},
    };
    std::vector<TransformedVertex> out;
    vs.processDraw(draw, 0, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_FLOAT_EQ(out[0].screen.x, 0.0f);
    EXPECT_FLOAT_EQ(out[0].screen.y, 0.0f);
    EXPECT_FLOAT_EQ(out[0].depth, 0.5f);
    EXPECT_FLOAT_EQ(out[1].screen.x, 128.0f);
    EXPECT_FLOAT_EQ(out[1].screen.y, 64.0f);
    EXPECT_FLOAT_EQ(out[1].depth, 1.0f);
    EXPECT_FLOAT_EQ(out[2].screen.x, 64.0f);
    EXPECT_FLOAT_EQ(out[2].depth, 0.0f);
    EXPECT_EQ(vs.verticesProcessed(), 3u);
}

TEST(VertexStage, TransformApplies)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);

    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    draw.transform = Mat4::scale(0.5f, 0.5f, 1.0f);
    draw.vertices = {Vertex{{1.0f, 1.0f, 0.0f, 1.0f}, {0, 0}}};
    std::vector<TransformedVertex> out;
    vs.processDraw(draw, 0, out);
    EXPECT_FLOAT_EQ(out[0].screen.x, 96.0f);  // ndc 0.5 -> 3/4 width
    EXPECT_FLOAT_EQ(out[0].screen.y, 48.0f);
}

TEST(VertexStage, PerspectiveDivide)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);

    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    // w = 2: clip (1, 1, 1, 2) -> ndc (0.5, 0.5, 0.5).
    draw.vertices = {Vertex{{1.0f, 1.0f, 1.0f, 2.0f}, {0, 0}}};
    std::vector<TransformedVertex> out;
    vs.processDraw(draw, 0, out);
    EXPECT_FLOAT_EQ(out[0].screen.x, 96.0f);   // 3/4 of 128
    EXPECT_FLOAT_EQ(out[0].screen.y, 48.0f);   // 3/4 of 64
    EXPECT_FLOAT_EQ(out[0].depth, 0.75f);
}

TEST(VertexStage, DepthClampedToUnitRange)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);
    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    draw.vertices = {Vertex{{0.0f, 0.0f, 5.0f, 1.0f}, {0, 0}},
                     Vertex{{0.0f, 0.0f, -5.0f, 1.0f}, {0, 0}}};
    std::vector<TransformedVertex> out;
    vs.processDraw(draw, 0, out);
    EXPECT_FLOAT_EQ(out[0].depth, 1.0f);
    EXPECT_FLOAT_EQ(out[1].depth, 0.0f);
}

TEST(VertexStage, FetchesThroughVertexCache)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);

    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    for (int i = 0; i < 16; ++i)
        draw.vertices.push_back(Vertex{{0, 0, 0, 1}, {0, 0}});
    std::vector<TransformedVertex> out;
    const Cycle end = vs.processDraw(draw, 0, out);
    EXPECT_GT(mem.vertexCache().accesses(), 0u);
    // 16 vertices x 24 B = 384 B = 6 lines -> at most 6 misses.
    EXPECT_LE(mem.vertexCache().misses(), 7u);
    EXPECT_GT(end, 0u);
}

TEST(VertexStage, PostTransformCacheReusesIndices)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);

    // A quad as an indexed triangle list: 6 indices, 4 vertices, two
    // shared — the classic post-transform reuse case.
    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    draw.vertices.assign(4, Vertex{{0, 0, 0, 1}, {0, 0}});
    draw.indices = {0, 1, 2, 2, 1, 3};
    std::vector<TransformedVertex> out;
    vs.processDraw(draw, 0, out);
    EXPECT_EQ(vs.verticesProcessed(), 4u);
    EXPECT_EQ(vs.transformsReused(), 2u);
}

TEST(VertexStage, FifoEvictionForcesReshade)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    VertexStage vs(cfg, mem);

    // Reference vertex 0, then more vertices than the FIFO holds,
    // then vertex 0 again: the second reference must re-shade.
    DrawCommand draw;
    draw.vertexBufferAddr = addr_map::kVertexBase;
    const std::uint32_t n =
        static_cast<std::uint32_t>(VertexStage::kPostTransformEntries) +
        4;
    draw.vertices.assign(n, Vertex{{0, 0, 0, 1}, {0, 0}});
    for (std::uint32_t i = 0; i < n; ++i)
        draw.indices.push_back(i);
    draw.indices.push_back(0);
    // Pad to a multiple of 3 (triangle list).
    while (draw.indices.size() % 3 != 0)
        draw.indices.push_back(1);
    std::vector<TransformedVertex> out;
    vs.processDraw(draw, 0, out);
    EXPECT_EQ(vs.verticesProcessed(), static_cast<std::uint64_t>(n) + 1);
}

// ---------- Primitive assembly ----------

Primitive
makePrim(Vec2f a, Vec2f b, Vec2f c)
{
    Primitive p;
    p.v[0].screen = a;
    p.v[1].screen = b;
    p.v[2].screen = c;
    p.v[0].uv = {0.0f, 0.0f};
    p.v[1].uv = {0.1f, 0.0f};
    p.v[2].uv = {0.0f, 0.1f};
    return p;
}

TEST(PrimAssembler, AssemblesTriangleList)
{
    GpuConfig cfg = smallCfg();
    PrimAssembler pa(cfg);
    DrawCommand draw;
    draw.indices = {0, 1, 2, 0, 2, 3};
    std::vector<TransformedVertex> tv(4);
    tv[0].screen = {10, 10};
    tv[1].screen = {50, 10};
    tv[2].screen = {50, 50};
    tv[3].screen = {10, 50};
    std::vector<Primitive> out;
    EXPECT_EQ(pa.assemble(draw, tv, 256, out), 2u);
    EXPECT_EQ(out[0].id, 0u);
    EXPECT_EQ(out[1].id, 1u);
}

TEST(PrimAssembler, CullsDegenerateAndOffscreen)
{
    GpuConfig cfg = smallCfg();
    PrimAssembler pa(cfg);
    DrawCommand draw;
    draw.indices = {0, 1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<TransformedVertex> tv(9);
    // Degenerate (collinear).
    tv[0].screen = {0, 0};
    tv[1].screen = {10, 10};
    tv[2].screen = {20, 20};
    // Fully offscreen (x < 0).
    tv[3].screen = {-50, 0};
    tv[4].screen = {-10, 0};
    tv[5].screen = {-10, 30};
    // Visible.
    tv[6].screen = {5, 5};
    tv[7].screen = {30, 5};
    tv[8].screen = {5, 30};
    std::vector<Primitive> out;
    EXPECT_EQ(pa.assemble(draw, tv, 256, out), 1u);
    EXPECT_EQ(pa.culled(), 2u);
}

TEST(PrimAssembler, PrimIdsMonotonicAcrossDraws)
{
    GpuConfig cfg = smallCfg();
    PrimAssembler pa(cfg);
    DrawCommand draw;
    draw.indices = {0, 1, 2};
    std::vector<TransformedVertex> tv(3);
    tv[0].screen = {5, 5};
    tv[1].screen = {30, 5};
    tv[2].screen = {5, 30};
    std::vector<Primitive> out;
    pa.assemble(draw, tv, 256, out);
    pa.assemble(draw, tv, 256, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id + 1, out[1].id);
}

TEST(PrimAssembler, LodFromUvScale)
{
    // A triangle mapping 1 uv unit across `span` pixels of a
    // `side`-texel texture: texels/pixel = side * uvrate.
    Primitive p = makePrim({0, 0}, {64, 0}, {0, 64});
    p.v[1].uv = {1.0f, 0.0f};
    p.v[2].uv = {0.0f, 1.0f};
    // 256 texels over 64 px -> 4 texels/px -> lod = 2.
    EXPECT_NEAR(PrimAssembler::computeLod(p, 256), 2.0f, 1e-4f);
    // 64 texels over 64 px -> 1 texel/px -> lod = 0 (magnification
    // clamps at 0 too).
    EXPECT_NEAR(PrimAssembler::computeLod(p, 64), 0.0f, 1e-4f);
    EXPECT_FLOAT_EQ(PrimAssembler::computeLod(p, 16), 0.0f);
}

} // namespace
} // namespace dtexl

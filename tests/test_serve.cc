/**
 * @file
 * Service-daemon tests (see DESIGN.md "Service daemon (dtexld)"),
 * bottom-up: the wire codec (every request is attacker-supplied text),
 * JobSpec validation, the crash-recovery journal including torn-tail
 * tolerance, the job table, and then a real Daemon on a temp Unix
 * socket — submit/status round trips, queue-full backpressure,
 * cancel of queued and running jobs, deadline expiry, command drain,
 * and journal-driven restart recovery. Signal handlers stay
 * uninstalled (installSignals=false); drains are driven through the
 * same requestDrain() path the handlers use. The whole file runs under
 * ThreadSanitizer in CI to police the daemon's locking.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/signals.hh"
#include "core/dtexl.hh"
#include "serve/daemon.hh"
#include "serve/job_table.hh"
#include "serve/journal.hh"
#include "serve/wire.hh"

namespace dtexl {
namespace {

// ---- wire codec ---------------------------------------------------

JsonValue
mustParse(const std::string &text)
{
    JsonValue v;
    std::string err;
    EXPECT_TRUE(parseJson(text, v, err)) << text << ": " << err;
    return v;
}

TEST(Wire, ParsesScalarsAndNesting)
{
    JsonValue v = mustParse(
        R"({"s":"hi","n":-2.5,"t":true,"f":false,"z":null,)"
        R"("a":[1,2,3],"o":{"k":"v"}})");
    EXPECT_EQ(v.str("s"), "hi");
    EXPECT_DOUBLE_EQ(v.num("n"), -2.5);
    EXPECT_TRUE(v.flag("t"));
    EXPECT_FALSE(v.flag("f", true));
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items.size(), 3u);
    EXPECT_DOUBLE_EQ(a->items[1].number, 2.0);
    const JsonValue *o = v.find("o");
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->str("k"), "v");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_EQ(v.str("missing", "dflt"), "dflt");
}

TEST(Wire, DecodesEscapesAndSurrogatePairs)
{
    JsonValue v = mustParse(
        R"({"e":"a\"b\\c\nd\tA","u":"😀"})");
    EXPECT_EQ(v.str("e"), "a\"b\\c\nd\tA");
    EXPECT_EQ(v.str("u"), "\xf0\x9f\x98\x80"); // U+1F600 in UTF-8
}

TEST(Wire, RejectsMalformedInput)
{
    JsonValue v;
    std::string err;
    const char *bad[] = {
        "",                        // empty
        "{",                       // truncated object
        R"({"a":1,})",             // trailing comma
        R"({"a" 1})",              // missing colon
        R"({"a":1} x)",            // trailing junk
        R"("un\qoted")",           // unknown escape
        R"({"s":"\ud800"})",       // unpaired surrogate
        "{\"s\":\"raw\tctl\"}",    // raw control char in string
        "nulle",                   // bad literal
        "--1",                     // malformed number
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseJson(text, v, err)) << "accepted: " << text;
        EXPECT_FALSE(err.empty());
    }
    // Depth bomb: must fail cleanly, not overflow the stack.
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(parseJson(deep, v, err));
}

TEST(Wire, WriterRoundTripsThroughParser)
{
    JsonWriter w;
    w.str("cmd", "submit")
        .str("esc", "a\"b\\c\nd")
        .u64("big", 9007199254740993ull)
        .i64("neg", -42)
        .f64("ms", 1.5)
        .boolean("flag", true);
    const std::string line = w.finish();
    EXPECT_EQ(line.back(), '\n');
    JsonValue v = mustParse(line.substr(0, line.size() - 1));
    EXPECT_EQ(v.str("cmd"), "submit");
    EXPECT_EQ(v.str("esc"), "a\"b\\c\nd");
    EXPECT_DOUBLE_EQ(v.num("neg"), -42.0);
    EXPECT_DOUBLE_EQ(v.num("ms"), 1.5);
    EXPECT_TRUE(v.flag("flag"));
}

// ---- JobSpec ------------------------------------------------------

TEST(JobSpec, ParsesFullSubmit)
{
    JsonValue v = mustParse(
        R"({"job":"j1","bench":"SWa","frames":4,"preset":"dtexl",)"
        R"("deadline_ms":1500,"retry_max":2,)"
        R"("options":[{"k":"width","v":"256"},{"k":"hiz","v":"1"}]})");
    JobSpec spec;
    std::string err;
    ASSERT_TRUE(parseJobSpec(v, spec, err)) << err;
    EXPECT_EQ(spec.label, "j1");
    EXPECT_EQ(spec.bench, "SWa");
    EXPECT_EQ(spec.frames, 4u);
    EXPECT_EQ(spec.preset, "dtexl");
    EXPECT_DOUBLE_EQ(spec.deadlineMs, 1500.0);
    EXPECT_EQ(spec.retryMax, 2);
    ASSERT_EQ(spec.options.size(), 2u);
    EXPECT_EQ(spec.options[0].first, "width");
    EXPECT_EQ(spec.options[1].second, "1");
}

TEST(JobSpec, RejectsInvalidSubmits)
{
    JobSpec spec;
    std::string err;
    const char *bad[] = {
        R"({})",                                   // no bench, no scene
        R"({"bench":"SWa","scene":"x.dscene"})",   // both
        R"({"bench":"SWa","frames":0})",           // zero frames
        R"({"bench":"SWa","frames":2.5})",         // fractional frames
        R"({"bench":"SWa","frames":1000000})",     // absurd frames
        R"({"bench":"SWa","deadline_ms":-1})",     // negative deadline
        R"({"bench":"SWa","retry_max":1000})",     // absurd retries
    };
    for (const char *text : bad) {
        EXPECT_FALSE(parseJobSpec(mustParse(text), spec, err))
            << "accepted: " << text;
        EXPECT_FALSE(err.empty());
    }
}

TEST(JobSpec, RendersRoundTrip)
{
    JobSpec spec;
    spec.label = "weird \"name\"";
    spec.bench = "SWa";
    spec.frames = 7;
    spec.deadlineMs = 250.0;
    spec.retryMax = 5;
    spec.options = {{"width", "256"}, {"grouping", "CG-square"}};
    JobSpec back;
    std::string err;
    ASSERT_TRUE(parseJobSpec(mustParse(renderJobSpec(spec)), back, err))
        << err;
    EXPECT_EQ(back.label, spec.label);
    EXPECT_EQ(back.bench, spec.bench);
    EXPECT_EQ(back.frames, spec.frames);
    EXPECT_DOUBLE_EQ(back.deadlineMs, spec.deadlineMs);
    EXPECT_EQ(back.retryMax, spec.retryMax);
    ASSERT_EQ(back.options.size(), 2u);
    EXPECT_EQ(back.options[1].second, "CG-square");
}

// ---- journal ------------------------------------------------------

class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/dtexl_serve_XXXXXX";
        dir_ = ::mkdtemp(tmpl);
        EXPECT_FALSE(dir_.empty());
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
    const std::string &path() const { return dir_; }

  private:
    std::string dir_;
};

JobSpec
benchSpec(const std::string &label, std::uint32_t frames = 1)
{
    JobSpec spec;
    spec.label = label;
    spec.bench = "SWa";
    spec.frames = frames;
    return spec;
}

TEST(Journal, PendingIsSubmitMinusDone)
{
    TempDir tmp;
    const std::string path = tmp.path() + "/jobs.journal";
    {
        JobJournal j(path);
        j.reset({});
        j.recordSubmit(benchSpec("a"));
        j.recordSubmit(benchSpec("b", 3));
        j.recordSubmit(benchSpec("c"));
        j.recordDone("a", "done");
        j.recordDone("c", "failed");
    }
    const std::vector<JobSpec> pending = JobJournal::loadPending(path);
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].label, "b");
    EXPECT_EQ(pending[0].frames, 3u);
}

TEST(Journal, MissingFileIsEmptyAndTornTailTolerated)
{
    TempDir tmp;
    const std::string path = tmp.path() + "/jobs.journal";
    EXPECT_TRUE(JobJournal::loadPending(path).empty());
    {
        JobJournal j(path);
        j.reset({});
        j.recordSubmit(benchSpec("a"));
        j.recordSubmit(benchSpec("b"));
    }
    // Shear the final line the way a crash mid-write would.
    std::string text;
    {
        std::ifstream in(path);
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }
    std::ofstream(path, std::ios::trunc)
        << text.substr(0, text.size() - 12);
    const std::vector<JobSpec> pending = JobJournal::loadPending(path);
    ASSERT_EQ(pending.size(), 1u) << "torn tail must drop only itself";
    EXPECT_EQ(pending[0].label, "a");
}

TEST(Journal, ResetCompactsToPending)
{
    TempDir tmp;
    const std::string path = tmp.path() + "/jobs.journal";
    {
        JobJournal j(path);
        j.reset({});
        for (int i = 0; i < 10; ++i)
            j.recordSubmit(benchSpec("j" + std::to_string(i)));
        for (int i = 0; i < 9; ++i)
            j.recordDone("j" + std::to_string(i), "done");
    }
    std::vector<JobSpec> pending = JobJournal::loadPending(path);
    ASSERT_EQ(pending.size(), 1u);
    {
        JobJournal j(path);
        j.reset(pending); // startup compaction
    }
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line))
        ++lines;
    EXPECT_EQ(lines, 1u) << "compaction must drop settled history";
    pending = JobJournal::loadPending(path);
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].label, "j9");
}

// ---- job table ----------------------------------------------------

TEST(JobTableTest, InsertFindDuplicateErase)
{
    JobTable table;
    GpuConfig cfg;
    JobRecord *a = table.insert(benchSpec("a"), cfg);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(table.insert(benchSpec("a"), cfg), nullptr)
        << "duplicate labels must be rejected";
    JobRecord *b = table.insert(benchSpec("b"), cfg);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(table.find("a"), a);
    EXPECT_EQ(table.size(), 2u);

    // Pointer stability across growth (workers hold raw pointers).
    for (int i = 0; i < 100; ++i)
        table.insert(benchSpec("grow" + std::to_string(i)), cfg);
    EXPECT_EQ(table.find("a"), a);
    EXPECT_EQ(table.all().front(), a);

    table.erase("a");
    EXPECT_EQ(table.find("a"), nullptr);
    JobRecord *a2 = table.insert(benchSpec("a"), cfg);
    EXPECT_NE(a2, nullptr) << "an erased label is reusable";
}

TEST(JobTableTest, TerminalStates)
{
    EXPECT_FALSE(jobStateTerminal(JobState::Queued));
    EXPECT_FALSE(jobStateTerminal(JobState::Running));
    EXPECT_FALSE(jobStateTerminal(JobState::RetryWait));
    EXPECT_TRUE(jobStateTerminal(JobState::Done));
    EXPECT_TRUE(jobStateTerminal(JobState::Failed));
    EXPECT_TRUE(jobStateTerminal(JobState::Cancelled));
    EXPECT_TRUE(jobStateTerminal(JobState::Expired));
    EXPECT_FALSE(jobStateTerminal(JobState::Interrupted))
        << "Interrupted re-queues on restart; it must not be terminal";
}

// ---- daemon end-to-end --------------------------------------------

/** Minimal blocking client for one request/response round trip. */
class TestClient
{
  public:
    static std::string
    rpc(const std::string &socketPath, const std::string &request)
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, socketPath.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd);
            return "";
        }
        std::string line = request;
        line += '\n';
        EXPECT_EQ(::send(fd, line.data(), line.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(line.size()));
        std::string resp;
        char c;
        while (::read(fd, &c, 1) == 1 && c != '\n')
            resp += c;
        ::close(fd);
        return resp;
    }
};

/**
 * A Daemon on its own thread over a temp socket. The fixture waits
 * for the socket to answer ping before the test body runs, and the
 * test must end with drain() (command drain => exit code 0).
 */
class DaemonFixture
{
  public:
    explicit DaemonFixture(DaemonConfig partial = {})
        : cfg_(std::move(partial))
    {
        resetDrainForTests();
        cfg_.stateDir = tmp_.path();
        cfg_.socketPath = tmp_.path() + "/d.sock";
        cfg_.installSignals = false;
        cfg_.baseCfg = makeBaselineConfig();
        cfg_.baseCfg.screenWidth = 256;
        cfg_.baseCfg.screenHeight = 128;
        cfg_.baseCfg.validate();
        daemon_ = std::make_unique<Daemon>(cfg_);
        thread_ = std::thread([this] { exitCode_ = daemon_->run(); });
        waitReady();
    }

    ~DaemonFixture()
    {
        if (thread_.joinable())
            drain(); // joins internally
        resetDrainForTests();
    }

    std::string
    rpc(const std::string &request)
    {
        return TestClient::rpc(cfg_.socketPath, request);
    }

    JsonValue
    rpcJson(const std::string &request)
    {
        const std::string resp = rpc(request);
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(resp, v, err))
            << request << " -> " << resp << ": " << err;
        return v;
    }

    /** Poll `status` until @p label reaches @p state (or timeout). */
    bool
    waitForState(const std::string &label, const std::string &state,
                 int timeoutMs = 30000)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(timeoutMs);
        while (std::chrono::steady_clock::now() < deadline) {
            JsonValue v = rpcJson(
                R"({"cmd":"status","job":")" + label + R"("})");
            const JsonValue *st = v.find("status");
            if (st && st->str("state") == state)
                return true;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        return false;
    }

    JsonValue
    drain()
    {
        JsonValue report = rpcJson(R"({"cmd":"drain"})");
        if (thread_.joinable())
            thread_.join();
        return report;
    }

    /** Join without a drain command (signal-initiated drains). */
    void
    join()
    {
        if (thread_.joinable())
            thread_.join();
    }

    int exitCode() const { return exitCode_; }
    const std::string &stateDir() const { return tmp_.path(); }

  private:
    void
    waitReady()
    {
        for (int i = 0; i < 2000; ++i) {
            const std::string r = rpc(R"({"cmd":"ping"})");
            if (r.find("\"ok\":true") != std::string::npos)
                return;
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        FAIL() << "daemon never became ready";
    }

    TempDir tmp_;
    DaemonConfig cfg_;
    std::unique_ptr<Daemon> daemon_;
    std::thread thread_;
    int exitCode_ = -1;
};

TEST(ServeDaemon, SubmitRunsToDoneAndReportsStatus)
{
    DaemonFixture d;
    JsonValue sub = d.rpcJson(
        R"({"cmd":"submit","job":"j1","bench":"SWa","frames":2})");
    EXPECT_TRUE(sub.flag("ok")) << "submit rejected";
    EXPECT_EQ(sub.str("job"), "j1");
    ASSERT_TRUE(d.waitForState("j1", "done"));

    JsonValue v = d.rpcJson(R"({"cmd":"status","job":"j1"})");
    const JsonValue *st = v.find("status");
    ASSERT_NE(st, nullptr);
    EXPECT_EQ(st->str("state"), "done");
    EXPECT_DOUBLE_EQ(st->num("frames_done"), 2.0);
    EXPECT_DOUBLE_EQ(st->num("attempts"), 1.0);
    EXPECT_GT(st->num("cycles"), 0.0);

    JsonValue report = d.drain();
    EXPECT_TRUE(report.flag("drained"));
    EXPECT_DOUBLE_EQ(report.num("done"), 1.0);
    EXPECT_EQ(d.exitCode(), 0) << "command drain exits 0";
}

TEST(ServeDaemon, RejectsMalformedAndUnknownRequests)
{
    DaemonFixture d;
    EXPECT_NE(d.rpc("this is not json").find("\"ok\":false"),
              std::string::npos);
    EXPECT_NE(d.rpc(R"({"cmd":"frobnicate"})").find("\"ok\":false"),
              std::string::npos);
    EXPECT_NE(d.rpc(R"({"cmd":"submit"})").find("\"ok\":false"),
              std::string::npos)
        << "submit without bench or scene must be rejected";
    EXPECT_NE(
        d.rpc(R"({"cmd":"submit","bench":"NoSuchBench"})")
            .find("\"ok\":false"),
        std::string::npos)
        << "unknown bench alias must be rejected at admission";
    EXPECT_NE(d.rpc(R"({"cmd":"status","job":"ghost"})")
                  .find("\"ok\":false"),
              std::string::npos);
    EXPECT_NE(d.rpc(R"({"cmd":"gc"})").find("\"ok\":false"),
              std::string::npos)
        << "gc without an armed cache must say so, not crash";
}

TEST(ServeDaemon, QueueFullSubmitsGetRetryAfter)
{
    DaemonConfig dc;
    dc.workers = 1;
    dc.queueDepth = 1;
    DaemonFixture d(dc);

    // Occupy the only worker with a long job, then fill the queue.
    EXPECT_TRUE(
        d.rpcJson(
             R"({"cmd":"submit","job":"long","bench":"SWa","frames":50})")
            .flag("ok"));
    ASSERT_TRUE(d.waitForState("long", "running"));
    EXPECT_TRUE(
        d.rpcJson(R"({"cmd":"submit","job":"q1","bench":"SWa"})")
            .flag("ok"));

    JsonValue rejected =
        d.rpcJson(R"({"cmd":"submit","job":"q2","bench":"SWa"})");
    EXPECT_FALSE(rejected.flag("ok"));
    EXPECT_GT(rejected.num("retry_after_ms"), 0.0)
        << "a full queue must advertise backpressure, not block";
    EXPECT_NE(d.rpc(R"({"cmd":"status","job":"q2"})")
                  .find("\"ok\":false"),
              std::string::npos)
        << "a rejected submit must leave no record behind";

    // Cancel the stuffing jobs so the drain is quick.
    EXPECT_TRUE(d.rpcJson(R"({"cmd":"cancel","job":"q1"})").flag("ok"));
    EXPECT_TRUE(
        d.rpcJson(R"({"cmd":"cancel","job":"long"})").flag("ok"));
    ASSERT_TRUE(d.waitForState("long", "cancelled"));

    JsonValue report = d.drain();
    EXPECT_DOUBLE_EQ(report.num("cancelled"), 2.0);
}

TEST(ServeDaemon, CancelQueuedAndRunningJobs)
{
    DaemonConfig dc;
    dc.workers = 1;
    DaemonFixture d(dc);

    EXPECT_TRUE(
        d.rpcJson(
             R"({"cmd":"submit","job":"run","bench":"SWa","frames":50})")
            .flag("ok"));
    ASSERT_TRUE(d.waitForState("run", "running"));
    EXPECT_TRUE(
        d.rpcJson(R"({"cmd":"submit","job":"park","bench":"SWa"})")
            .flag("ok"));

    // Queued: cancel takes effect immediately, no worker involved.
    EXPECT_TRUE(
        d.rpcJson(R"({"cmd":"cancel","job":"park"})").flag("ok"));
    ASSERT_TRUE(d.waitForState("park", "cancelled"));

    // Running: cooperative — the attempt unwinds at a frame boundary.
    EXPECT_TRUE(
        d.rpcJson(R"({"cmd":"cancel","job":"run"})").flag("ok"));
    ASSERT_TRUE(d.waitForState("run", "cancelled"));

    // Cancelling a terminal job is an error, not a state change.
    JsonValue again = d.rpcJson(R"({"cmd":"cancel","job":"run"})");
    EXPECT_FALSE(again.flag("ok"));

    d.drain();
}

TEST(ServeDaemon, DeadlineExpiresLongJob)
{
    DaemonFixture d;
    EXPECT_TRUE(d.rpcJson(R"({"cmd":"submit","job":"slow",)"
                          R"("bench":"SWa","frames":50,)"
                          R"("deadline_ms":1,"retry_max":1})")
                    .flag("ok"));
    ASSERT_TRUE(d.waitForState("slow", "expired"));
    JsonValue v = d.rpcJson(R"({"cmd":"status","job":"slow"})");
    const JsonValue *st = v.find("status");
    ASSERT_NE(st, nullptr);
    EXPECT_LT(st->num("frames_done"), 50.0)
        << "the deadline must cut the job short";
    JsonValue report = d.drain();
    EXPECT_DOUBLE_EQ(report.num("expired"), 1.0);
}

TEST(ServeDaemon, RestartRecoversJournaledJobs)
{
    TempDir tmp;
    // A daemon that died hard: submits journaled, no done lines.
    {
        JobJournal j(tmp.path() + "/jobs.journal");
        j.reset({});
        j.recordSubmit(benchSpec("owed-1", 2));
        j.recordSubmit(benchSpec("owed-2"));
    }

    resetDrainForTests();
    DaemonConfig dc;
    dc.stateDir = tmp.path();
    dc.socketPath = tmp.path() + "/d.sock";
    dc.installSignals = false;
    dc.baseCfg = makeBaselineConfig();
    dc.baseCfg.screenWidth = 256;
    dc.baseCfg.screenHeight = 128;
    dc.baseCfg.validate();

    Daemon daemon(dc);
    int exitCode = -1;
    std::thread t([&] { exitCode = daemon.run(); });
    auto rpc = [&](const std::string &req) {
        return TestClient::rpc(dc.socketPath, req);
    };
    for (int i = 0; i < 2000; ++i) {
        if (rpc(R"({"cmd":"ping"})").find("\"ok\":true") !=
            std::string::npos)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }

    // Both owed jobs must already be in the table (recovered), and
    // eventually done — without any client re-submitting them.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    bool allDone = false;
    while (!allDone && std::chrono::steady_clock::now() < deadline) {
        const std::string s1 = rpc(R"({"cmd":"status","job":"owed-1"})");
        const std::string s2 = rpc(R"({"cmd":"status","job":"owed-2"})");
        allDone = s1.find("\"state\":\"done\"") != std::string::npos &&
                  s2.find("\"state\":\"done\"") != std::string::npos;
        if (!allDone)
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(allDone) << "recovered jobs must run to completion";

    rpc(R"({"cmd":"drain"})");
    t.join();
    EXPECT_EQ(exitCode, 0);
    resetDrainForTests();

    // Settled: a further restart owes nothing.
    EXPECT_TRUE(
        JobJournal::loadPending(tmp.path() + "/jobs.journal").empty());
}

TEST(ServeDaemon, SignalDrainExitsInterrupted)
{
    DaemonFixture d;
    EXPECT_TRUE(d.rpcJson(R"({"cmd":"submit","job":"j","bench":"SWa"})")
                    .flag("ok"));
    ASSERT_TRUE(d.waitForState("j", "done"));
    // A real SIGTERM lands in a handler that calls requestDrain();
    // driving it directly exercises the same path minus the handler.
    // No drain *command* is sent — that would mark the drain as
    // command-initiated and change the exit code.
    requestDrain();
    d.join();
    EXPECT_EQ(d.exitCode(), kExitInterrupted)
        << "signal-initiated drains must exit 130";
}

} // namespace
} // namespace dtexl

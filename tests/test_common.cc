/**
 * @file
 * Unit tests for the common module: statistics, RNG, bounded FIFO,
 * configuration validation and policy naming.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/config.hh"
#include "common/fixed_queue.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dtexl {
namespace {

// ---------- types ----------

TEST(Types, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(1960, 32), 62u);
    EXPECT_EQ(divCeil(768, 32), 24u);
}

TEST(Types, EdgeAdjacency)
{
    EXPECT_TRUE(isEdgeAdjacent({0, 0}, {1, 0}));
    EXPECT_TRUE(isEdgeAdjacent({3, 4}, {3, 3}));
    EXPECT_FALSE(isEdgeAdjacent({0, 0}, {1, 1}));  // diagonal
    EXPECT_FALSE(isEdgeAdjacent({2, 2}, {2, 2}));  // equal
    EXPECT_FALSE(isEdgeAdjacent({0, 0}, {2, 0}));  // distance 2
}

// ---------- stats ----------

TEST(Stats, MeanAndGeoMean)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
    EXPECT_NEAR(geoMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geoMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Stats, NormMeanDeviationBalanced)
{
    // Perfect balance -> zero deviation.
    EXPECT_DOUBLE_EQ(normMeanDeviation({5.0, 5.0, 5.0, 5.0}), 0.0);
}

TEST(Stats, NormMeanDeviationKnownValue)
{
    // Samples 0 and 2: mean 1, |dev| = 1 each -> 1.0 normalized.
    EXPECT_DOUBLE_EQ(normMeanDeviation({0.0, 2.0}), 1.0);
    // One SC does all the work of four: mean 1, devs {3,1,1,1}/4=1.5.
    EXPECT_DOUBLE_EQ(normMeanDeviation({4.0, 0.0, 0.0, 0.0}), 1.5);
}

TEST(Stats, NormMeanDeviationDegenerate)
{
    EXPECT_DOUBLE_EQ(normMeanDeviation({}), 0.0);
    EXPECT_DOUBLE_EQ(normMeanDeviation({0.0, 0.0}), 0.0);
}

TEST(Stats, DistributionQuantiles)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(static_cast<double>(i));
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_NEAR(d.quantile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(d.mean(), 50.5, 1e-9);
    EXPECT_LE(d.quantile(0.25), d.quantile(0.75));
}

TEST(Stats, DistributionInterleavedAddAndQuery)
{
    Distribution d;
    d.add(10.0);
    EXPECT_DOUBLE_EQ(d.max(), 10.0);
    d.add(20.0);  // must invalidate the cached sort
    EXPECT_DOUBLE_EQ(d.max(), 20.0);
    d.add(5.0);
    EXPECT_DOUBLE_EQ(d.min(), 5.0);
}

TEST(Stats, StatSetCounters)
{
    StatSet s("unit");
    EXPECT_EQ(s.get("x"), 0u);
    s.inc("x");
    s.inc("x", 41);
    EXPECT_EQ(s.get("x"), 42u);
    s.inc("y", 7);
    EXPECT_NE(s.dump().find("unit.x = 42"), std::string::npos);
    EXPECT_NE(s.dump().find("unit.y = 7"), std::string::npos);
    s.clear();
    EXPECT_EQ(s.get("x"), 0u);
}

// ---------- rng ----------

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BoundedInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(9);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 1000; ++i) {
        double x = r.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    EXPECT_LT(lo, 0.1);  // should spread over the interval
    EXPECT_GT(hi, 0.9);
}

TEST(Rng, GeometricMeanApproximate)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.nextGeometric(4.0));
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 200; ++i) {
        auto v = r.nextRange(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

// ---------- fixed queue ----------

TEST(FixedQueue, FifoOrder)
{
    FixedQueue<int> q(4);
    EXPECT_TRUE(q.empty());
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    q.push(4);
    q.push(5);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.pop(), 5);
    EXPECT_TRUE(q.empty());
}

TEST(FixedQueue, FullAndWrapAround)
{
    FixedQueue<int> q(2);
    q.push(1);
    q.push(2);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.full());
    q.push(3);
    EXPECT_TRUE(q.full());
    EXPECT_EQ(q.front(), 2);
    q.clear();
    EXPECT_TRUE(q.empty());
}

// ---------- config ----------

TEST(Config, TableTwoDefaults)
{
    GpuConfig cfg;
    EXPECT_EQ(cfg.clockHz, 600'000'000u);
    EXPECT_EQ(cfg.screenWidth, 1960u);
    EXPECT_EQ(cfg.screenHeight, 768u);
    EXPECT_EQ(cfg.tileSize, 32u);
    EXPECT_EQ(cfg.numPipelines, 4u);
    EXPECT_EQ(cfg.vertexCache.sizeBytes, 8u * 1024);
    EXPECT_EQ(cfg.textureCache.sizeBytes, 16u * 1024);
    EXPECT_EQ(cfg.tileCache.sizeBytes, 64u * 1024);
    EXPECT_EQ(cfg.l2Cache.sizeBytes, 1024u * 1024);
    EXPECT_EQ(cfg.l2Cache.ways, 8u);
    EXPECT_EQ(cfg.l2Cache.hitLatency, 12u);
    EXPECT_EQ(cfg.numTiles(), 62u * 24u);
    EXPECT_EQ(cfg.quadsPerTileSide(), 16u);
    EXPECT_NO_FATAL_FAILURE(cfg.validate());
}

TEST(Config, Presets)
{
    GpuConfig base = makeBaselineConfig();
    EXPECT_EQ(base.grouping, QuadGrouping::FGXShift2);
    EXPECT_EQ(base.tileOrder, TileOrder::ZOrder);
    EXPECT_FALSE(base.decoupledBarriers);

    GpuConfig dt = makeDTexLConfig();
    EXPECT_EQ(dt.grouping, QuadGrouping::CGSquare);
    EXPECT_EQ(dt.tileOrder, TileOrder::RectHilbert);
    EXPECT_EQ(dt.assignment, SubtileAssignment::Flip2);
    EXPECT_TRUE(dt.decoupledBarriers);

    GpuConfig ub = makeUpperBoundConfig();
    EXPECT_EQ(ub.numPipelines, 1u);
    EXPECT_EQ(ub.textureCache.sizeBytes, 4u * 16 * 1024);
    EXPECT_NO_FATAL_FAILURE(ub.validate());
}

TEST(Config, DescribeMentionsKeyParameters)
{
    const std::string d = GpuConfig{}.describe();
    EXPECT_NE(d.find("600 MHz"), std::string::npos);
    EXPECT_NE(d.find("1960x768"), std::string::npos);
    EXPECT_NE(d.find("32x32"), std::string::npos);
    EXPECT_NE(d.find("1024 KiB"), std::string::npos);
}

TEST(Policies, Names)
{
    EXPECT_EQ(toString(QuadGrouping::FGXShift2), "FG-xshift2");
    EXPECT_EQ(toString(QuadGrouping::CGSquare), "CG-square");
    EXPECT_EQ(toString(TileOrder::RectHilbert), "Hilbert");
    EXPECT_EQ(toString(SubtileAssignment::Flip2), "flp2");
}

TEST(Policies, CoarseGrainedClassification)
{
    int coarse = 0;
    for (QuadGrouping g : kAllQuadGroupings)
        coarse += isCoarseGrained(g) ? 1 : 0;
    EXPECT_EQ(coarse, 4);
    EXPECT_FALSE(isCoarseGrained(QuadGrouping::FGXShift2));
    EXPECT_TRUE(isCoarseGrained(QuadGrouping::CGYRect));
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Thread-count invariance of the parallel geometry/tiling front-end:
 * GpuConfig::geomThreads is a host-parallelism knob only, so every
 * observable output — FrameStats including the image hash, and the
 * full StatRegistry — must be bit-identical for any thread count, on
 * every preset. Also unit-tests the WorkerPool the front-end fans out
 * over. Runs under the ThreadSanitizer CI build, which would flag any
 * racing access in the fan-out.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/worker_pool.hh"
#include "core/dtexl.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

/** Every FrameStats field, including the image hash. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

/**
 * Render 2 animated frames of @p alias under @p cfg with 1, 2 and 8
 * geometry threads; every frame of every thread count must be
 * bit-exact against the serial run.
 */
void
threadCountInvariant(GpuConfig cfg, const std::string &alias)
{
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;

    const BenchmarkParams &p = benchmarkByAlias(alias);
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);
    const Scene *frames[] = {&f0, &f1};

    GpuConfig serial_cfg = cfg;
    serial_cfg.geomThreads = 1;
    GpuSimulator serial(serial_cfg, f0);
    std::vector<FrameStats> want;
    for (const Scene *s : frames) {
        serial.setScene(*s);
        want.push_back(serial.renderFrame());
    }

    for (std::uint32_t threads : {2u, 8u}) {
        GpuConfig par_cfg = cfg;
        par_cfg.geomThreads = threads;
        GpuSimulator par(par_cfg, f0);
        for (std::size_t f = 0; f < 2; ++f) {
            par.setScene(*frames[f]);
            const FrameStats fs = par.renderFrame();
            expectSameStats(want[f], fs,
                            alias + " threads=" +
                                std::to_string(threads) + " frame " +
                                std::to_string(f));
        }
    }
}

TEST(ParallelGeom, BaselinePresetInvariant)
{
    threadCountInvariant(makeBaselineConfig(), "SWa");
}

TEST(ParallelGeom, DTexLPresetInvariant)
{
    threadCountInvariant(makeDTexLConfig(), "GTr");
}

TEST(ParallelGeom, UpperBoundPresetInvariant)
{
    threadCountInvariant(makeUpperBoundConfig(), "SoD");
}

TEST(ParallelGeom, ExtensionsInvariant)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.hierarchicalZ = true;
    cfg.transactionElimination = true;
    cfg.texturePrefetch = true;
    threadCountInvariant(cfg, "CCS");
}

TEST(ParallelGeom, AutoThreadsMatchesSerial)
{
    // geomThreads = 0 resolves to the host's hardware concurrency,
    // whatever that is; the result must still match the serial run.
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    const Scene scene =
        generateScene(benchmarkByAlias("Mze"), cfg, 0);

    GpuConfig serial_cfg = cfg;
    serial_cfg.geomThreads = 1;
    GpuConfig auto_cfg = cfg;
    auto_cfg.geomThreads = 0;
    EXPECT_GE(auto_cfg.resolvedGeomThreads(), 1u);

    GpuSimulator serial(serial_cfg, scene);
    GpuSimulator autop(auto_cfg, scene);
    expectSameStats(serial.renderFrame(), autop.renderFrame(),
                    "Mze auto threads");
}

/**
 * The flat stats-JSON dump (what --stats-json writes) must match
 * key-for-key across thread counts, except the host wall-clock
 * counters which are inherently non-deterministic.
 */
TEST(ParallelGeom, StatRegistryBitExact)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    const Scene scene =
        generateScene(benchmarkByAlias("GTr"), cfg, 0);

    GpuConfig serial_cfg = cfg;
    serial_cfg.geomThreads = 1;
    GpuConfig par_cfg = cfg;
    par_cfg.geomThreads = 8;

    StatRegistry serial_reg("serial"), par_reg("par");
    GpuSimulator serial(serial_cfg, scene);
    GpuSimulator par(par_cfg, scene);
    serial.setStatRegistry(&serial_reg, "engine");
    par.setStatRegistry(&par_reg, "engine");
    (void)serial.renderFrame();
    (void)par.renderFrame();

    ASSERT_EQ(serial_reg.paths(), par_reg.paths());
    for (const std::string &path : serial_reg.paths()) {
        const auto &a = serial_reg.node(path).counters();
        const auto &b = par_reg.node(path).counters();
        ASSERT_EQ(a.size(), b.size()) << path;
        for (const auto &[key, value] : a) {
            if (key == "wall_us")
                continue;
            EXPECT_EQ(value, b.at(key)) << path << "." << key;
        }
    }
}

TEST(WorkerPool, CoversEveryIndexOnce)
{
    for (unsigned threads : {1u, 2u, 5u}) {
        WorkerPool pool(threads);
        EXPECT_GE(pool.size(), 1u);
        std::vector<std::atomic<int>> hits(1000);
        pool.parallelFor(hits.size(), [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < hits.size(); ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(WorkerPool, ReusableAcrossCalls)
{
    WorkerPool pool(4);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 50; ++round) {
        sum.store(0);
        pool.parallelFor(round, [&](std::size_t i) {
            sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
        const std::uint64_t n = static_cast<std::uint64_t>(round);
        EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
    }
}

TEST(WorkerPool, ZeroAndOneSized)
{
    WorkerPool pool(3);
    int calls = 0;
    pool.parallelFor(0, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

} // namespace
} // namespace dtexl

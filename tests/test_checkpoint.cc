/**
 * @file
 * Checkpoint/resume determinism battery (src/cache/checkpoint.hh,
 * SimulationSession::saveCheckpoint/tryResumeCheckpoint): a job killed
 * at ANY checkpoint boundary and resumed must finish with byte-identical
 * FrameStats, image hashes and registry counters — including when the
 * resuming process uses different host thread counts, and including
 * when the checkpoint on disk is corrupt (detected, logged, restart
 * from frame 0, still bit-exact). Also proves the engine-level --resume
 * path through runBatch().
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/checkpoint.hh"
#include "cache/result_key.hh"
#include "cache/result_store.hh"
#include "common/fault_inject.hh"
#include "common/log.hh"
#include "common/serial.hh"
#include "core/dtexl.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

constexpr std::uint32_t kFrames = 4;

GpuConfig
small(GpuConfig cfg)
{
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

std::string
tempDir(const std::string &name)
{
    // Pid-suffixed so a previous test invocation's artifacts can never
    // satisfy this run's lookups.
    const std::string dir = ::testing::TempDir() + "dtexl_" + name +
                            "." + std::to_string(::getpid());
    ensureDirectory(dir);
    return dir;
}

std::vector<Scene>
makeScenes(const char *alias, const GpuConfig &cfg, std::uint32_t n)
{
    std::vector<Scene> scenes;
    for (std::uint32_t f = 0; f < n; ++f)
        scenes.push_back(generateScene(benchmarkByAlias(alias), cfg, f));
    return scenes;
}

/** The exact key runJob() derives for a (scenes, cfg) job. */
ResultKey
makeKey(const std::vector<Scene> &scenes, const GpuConfig &cfg)
{
    Fnv1a64 chain;
    chain.u32(static_cast<std::uint32_t>(scenes.size()));
    for (const Scene &s : scenes)
        chain.u64(hashScene(s));
    return ResultKey{chain.value(), hashConfig(cfg),
                     buildFingerprint()};
}

/** Every FrameStats field, including the image hash. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.flushesEliminated, b.flushesEliminated);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.tileTimeDeviation.samples(), b.tileTimeDeviation.samples());
    EXPECT_EQ(a.tileQuadDeviation.samples(), b.tileQuadDeviation.samples());
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

void
expectSameHistory(const std::vector<FrameStats> &a,
                  const std::vector<FrameStats> &b,
                  const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t f = 0; f < a.size(); ++f)
        expectSameStats(a[f], b[f], what + " frame " + std::to_string(f));
}

/** Full registry equality, minus the host wall-clock counters. */
void
expectSameRegistry(const StatRegistry &a, const StatRegistry &b)
{
    ASSERT_EQ(a.paths(), b.paths());
    for (const std::string &path : a.paths()) {
        const auto &ca = a.find(path)->counters();
        const auto &cb = b.find(path)->counters();
        ASSERT_EQ(ca.size(), cb.size()) << path;
        for (const auto &[key, value] : ca) {
            if (key == "wall_us")
                continue;
            EXPECT_EQ(value, cb.at(key)) << path << "." << key;
        }
    }
}

/** An uninterrupted n-frame run of (scenes, cfg) under @p label. */
std::vector<FrameStats>
uninterruptedRun(const GpuConfig &cfg, const std::vector<Scene> &scenes,
                 const std::string &label, StatRegistry *reg)
{
    SimulationSession session(cfg, scenes[0], label);
    if (reg)
        session.setStatRegistry(reg);
    session.renderFrame();
    for (std::uint32_t f = 1; f < scenes.size(); ++f)
        session.renderFrame(scenes[f]);
    return session.history();
}

// ---- The kill-at-every-checkpoint resume matrix ------------------

TEST(CheckpointTest, ResumeAtEveryFrameBoundaryIsBitExact)
{
    const std::string dir = tempDir("ckpt_matrix");
    // Baseline and full-DTexL machines; the third variant turns
    // telemetry on so the cumulative-track restore path (and the
    // skip-telemetry fragment rule) is exercised too.
    GpuConfig telemetry_cfg = small(makeDTexLConfig());
    telemetry_cfg.telemetryLevel = 1;
    const std::pair<const char *, GpuConfig> presets[] = {
        {"baseline", small(makeBaselineConfig())},
        {"dtexl", small(makeDTexLConfig())},
        {"dtexl_telemetry", telemetry_cfg},
    };

    for (const auto &[name, cfg] : presets) {
        SCOPED_TRACE(name);
        const std::vector<Scene> scenes = makeScenes("GTr", cfg, kFrames);
        const ResultKey key = makeKey(scenes, cfg);

        StatRegistry ref_reg("ref");
        const std::vector<FrameStats> ref =
            uninterruptedRun(cfg, scenes, "job.t", &ref_reg);

        for (std::uint32_t k = 1; k < kFrames; ++k) {
            SCOPED_TRACE("killed after frame " + std::to_string(k));
            const std::string path =
                dir + "/ckpt-" + name + "-" + std::to_string(k) + ".bin";

            // The "killed" process: renders k frames, checkpoints, dies.
            {
                StatRegistry reg("victim");
                SimulationSession session(cfg, scenes[0], "job.t");
                session.setStatRegistry(&reg);
                session.renderFrame();
                for (std::uint32_t f = 1; f < k; ++f)
                    session.renderFrame(scenes[f]);
                session.saveCheckpoint(path, key);
            }

            // The resuming process: fresh simulator, fresh registry.
            StatRegistry reg("resumed");
            SimulationSession session(cfg, scenes[0], "job.t");
            session.setStatRegistry(&reg);
            ASSERT_EQ(session.tryResumeCheckpoint(path, key), k);
            for (std::uint32_t f = k; f < kFrames; ++f)
                session.renderFrame(scenes[f]);

            expectSameHistory(ref, session.history(), "history");
            expectSameRegistry(ref_reg, reg);
        }
    }
}

TEST(CheckpointTest, ResumeAcrossThreadCountChangesIsBitExact)
{
    // Host thread knobs are excluded from the key (hashConfig()), so a
    // checkpoint taken by a serial run must resume bit-identically on a
    // differently-threaded host.
    const std::string dir = tempDir("ckpt_threads");
    GpuConfig serial_cfg = small(makeDTexLConfig());
    serial_cfg.geomThreads = 1;
    serial_cfg.rasterThreads = 1;
    GpuConfig threaded_cfg = serial_cfg;
    threaded_cfg.geomThreads = 4;
    threaded_cfg.rasterThreads = 2;

    const std::vector<Scene> scenes =
        makeScenes("GTr", serial_cfg, kFrames);
    const ResultKey key = makeKey(scenes, serial_cfg);
    ASSERT_EQ(key.config, makeKey(scenes, threaded_cfg).config);

    StatRegistry ref_reg("ref");
    const std::vector<FrameStats> ref =
        uninterruptedRun(serial_cfg, scenes, "job.t", &ref_reg);

    const std::string path = dir + "/ckpt-threads.bin";
    {
        StatRegistry reg("victim");
        SimulationSession session(serial_cfg, scenes[0], "job.t");
        session.setStatRegistry(&reg);
        session.renderFrame();
        session.renderFrame(scenes[1]);
        session.saveCheckpoint(path, key);
    }

    StatRegistry reg("resumed");
    SimulationSession session(threaded_cfg, scenes[0], "job.t");
    session.setStatRegistry(&reg);
    ASSERT_EQ(session.tryResumeCheckpoint(path, key), 2u);
    for (std::uint32_t f = 2; f < kFrames; ++f)
        session.renderFrame(scenes[f]);

    expectSameHistory(ref, session.history(), "threaded resume");
    expectSameRegistry(ref_reg, reg);
}

// ---- Failure paths -----------------------------------------------

TEST(CheckpointTest, CorruptCheckpointRestartsFromScratchBitExact)
{
    setLogQuiet(true);
    const std::string dir = tempDir("ckpt_corrupt");
    const GpuConfig cfg = small(makeBaselineConfig());
    const std::vector<Scene> scenes = makeScenes("Mze", cfg, 2);
    const ResultKey key = makeKey(scenes, cfg);
    const std::vector<FrameStats> ref =
        uninterruptedRun(cfg, scenes, "job.t", nullptr);

    const std::string path = dir + "/ckpt.bin";
    {
        SimulationSession session(cfg, scenes[0], "job.t");
        session.renderFrame();
        session.saveCheckpoint(path, key);
    }

    // A bit-flipped checkpoint must be rejected by its checksum: the
    // resume yields 0 and the fresh run is still bit-exact.
    SimulationSession session(cfg, scenes[0], "job.t");
    {
        ScopedFault fault(FaultSite::CkptFlipByte);
        EXPECT_EQ(session.tryResumeCheckpoint(path, key), 0u);
        EXPECT_EQ(FaultInject::global().fired(FaultSite::CkptFlipByte),
                  1u);
    }
    session.renderFrame();
    session.renderFrame(scenes[1]);
    expectSameHistory(ref, session.history(), "after corrupt resume");
    setLogQuiet(false);
}

TEST(CheckpointTest, WrongKeyAndMissingFileResumeNothing)
{
    setLogQuiet(true);
    const std::string dir = tempDir("ckpt_wrongkey");
    const GpuConfig cfg = small(makeBaselineConfig());
    const std::vector<Scene> scenes = makeScenes("Mze", cfg, 2);
    const ResultKey key = makeKey(scenes, cfg);

    const std::string path = dir + "/ckpt.bin";
    {
        SimulationSession session(cfg, scenes[0], "job.t");
        session.renderFrame();
        session.saveCheckpoint(path, key);
    }

    SimulationSession session(cfg, scenes[0], "job.t");
    ResultKey other = key;
    other.scene ^= 1;  // another job's checkpoint: never restored
    EXPECT_EQ(session.tryResumeCheckpoint(path, other), 0u);
    EXPECT_EQ(session.tryResumeCheckpoint(dir + "/absent.bin", key), 0u);
    setLogQuiet(false);
}

TEST(CheckpointTest, MidRestoreFailureResetsToColdState)
{
    // A checkpoint that frames/parses fine but was produced by a
    // different machine geometry fails inside restoreWarmState() (cache
    // line-count mismatch) after some warm state may already be in
    // place; the session must reset itself back to cold so the
    // from-scratch rerun stays bit-exact.
    setLogQuiet(true);
    const std::string dir = tempDir("ckpt_midfail");
    const GpuConfig cfg = small(makeBaselineConfig());
    GpuConfig bigger = cfg;
    bigger.textureCache.sizeBytes *= 2;
    const std::vector<Scene> scenes = makeScenes("Mze", cfg, 2);
    const ResultKey key{1, 2, 3};  // same key on both sides, on purpose
    const std::vector<FrameStats> ref =
        uninterruptedRun(cfg, scenes, "job.t", nullptr);

    const std::string path = dir + "/ckpt.bin";
    {
        SimulationSession session(bigger, scenes[0], "job.t");
        session.renderFrame();
        session.saveCheckpoint(path, key);
    }

    SimulationSession session(cfg, scenes[0], "job.t");
    EXPECT_EQ(session.tryResumeCheckpoint(path, key), 0u);
    session.renderFrame();
    session.renderFrame(scenes[1]);
    expectSameHistory(ref, session.history(), "after failed restore");
    setLogQuiet(false);
}

// ---- The engine-level --resume path ------------------------------

TEST(CheckpointTest, RunBatchResumesFromAnInterruptedJob)
{
    setLogQuiet(true);
    const std::string dir = tempDir("ckpt_batch");
    const GpuConfig cfg = small(makeBaselineConfig());
    const std::vector<Scene> scenes = makeScenes("GTr", cfg, kFrames);

    std::vector<BatchJob> jobs;
    BatchJob bj;
    bj.label = "GTr";
    bj.cfg = cfg;
    const std::vector<Scene> *s = &scenes;
    bj.scene = [s](std::uint32_t f) -> const Scene & { return (*s)[f]; };
    bj.frames = kFrames;
    jobs.push_back(std::move(bj));

    ResultCache &rc = ResultCache::global();
    rc.resetForTests();

    // Reference: the same batch, uninterrupted and cache-less.
    StatRegistry ref_reg("ref");
    const std::vector<BatchResult> ref = runBatch(jobs, 1, &ref_reg);
    ASSERT_TRUE(ref[0].ok);

    // "Interrupted run": a victim process rendered 2 of 4 frames and
    // checkpointed at the exact path runJob() derives, then died.
    rc.configure(dir, CacheMode::Off, /*checkpointEvery=*/2,
                 /*resume=*/true);
    const ResultKey key = makeKey(scenes, cfg);
    {
        StatRegistry reg("victim");
        SimulationSession session(cfg, scenes[0], "job.GTr");
        session.setStatRegistry(&reg);
        session.renderFrame();
        session.renderFrame(scenes[1]);
        session.saveCheckpoint(rc.store()->checkpointPath(key), key);
    }

    // --resume: the batch picks the checkpoint up, finishes the job,
    // and deletes the consumed checkpoint.
    StatRegistry reg("resumed");
    const std::vector<BatchResult> res = runBatch(jobs, 1, &reg);
    ASSERT_TRUE(res[0].ok);
    EXPECT_EQ(rc.resumes(), 1u);
    expectSameHistory(ref[0].frames, res[0].frames, "batch resume");
    expectSameRegistry(ref_reg, reg);
    std::vector<std::uint8_t> leftover;
    EXPECT_FALSE(readFileBytes(rc.store()->checkpointPath(key),
                               leftover))
        << "consumed checkpoint must be deleted";

    rc.resetForTests();
    setLogQuiet(false);
}

} // namespace
} // namespace dtexl

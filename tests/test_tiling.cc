/**
 * @file
 * Tests for the Tiling Engine: Parameter Buffer layout/accounting,
 * Polygon List Builder binning (exact overlap, program order), and the
 * Tile Fetcher (traversal order, timed reads).
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "tiling/param_buffer.hh"
#include "tiling/poly_list_builder.hh"
#include "tiling/tile_fetcher.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 128;   // 4x2 tiles of 32px
    cfg.screenHeight = 64;
    return cfg;
}

Primitive
makeTri(PrimId id, Vec2f a, Vec2f b, Vec2f c)
{
    Primitive p;
    p.id = id;
    p.v[0].screen = a;
    p.v[1].screen = b;
    p.v[2].screen = c;
    return p;
}

TEST(ParamBuffer, AddressesDisjointAndStable)
{
    ParamBuffer pb(8);
    Primitive p = makeTri(0, {0, 0}, {10, 0}, {0, 10});
    const std::size_t i0 = pb.addPrimitive(p);
    const std::size_t i1 = pb.addPrimitive(p);
    EXPECT_EQ(i0, 0u);
    EXPECT_EQ(i1, 1u);
    EXPECT_EQ(pb.attrAddr(1) - pb.attrAddr(0),
              ParamBuffer::kAttrRecordBytes);
    // List entries of different tiles never alias.
    EXPECT_NE(pb.listEntryAddr(0, 0), pb.listEntryAddr(1, 0));
    EXPECT_GT(pb.listEntryAddr(0, 0), pb.attrAddr(1'000'000));
}

TEST(ParamBuffer, FootprintAccounting)
{
    ParamBuffer pb(4);
    Primitive p = makeTri(0, {0, 0}, {10, 0}, {0, 10});
    pb.addPrimitive(p);
    pb.appendToTile(0, 0);
    pb.appendToTile(1, 0);
    EXPECT_EQ(pb.footprintBytes(),
              ParamBuffer::kAttrRecordBytes +
                  2 * ParamBuffer::kListEntryBytes);
    pb.clear();
    EXPECT_EQ(pb.footprintBytes(), 0u);
    EXPECT_EQ(pb.numPrimitives(), 0u);
}

TEST(PolyListBuilder, BinsToExactlyOverlappedTiles)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    PolyListBuilder builder(cfg, mem, pb);

    // Small triangle inside tile (1,0) only.
    builder.binPrimitive(makeTri(0, {40, 8}, {56, 8}, {40, 24}), 0);
    for (TileId t = 0; t < cfg.numTiles(); ++t)
        EXPECT_EQ(pb.tileList(t).size(), t == 1 ? 1u : 0u) << t;
}

TEST(PolyListBuilder, BboxFalsePositivesExcluded)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    PolyListBuilder builder(cfg, mem, pb);

    // A thin diagonal spanning tiles (0,0) to (3,1): its bbox covers
    // all 8 tiles but the triangle itself misses the off-diagonal
    // corners.
    builder.binPrimitive(makeTri(0, {0, 0}, {8, 0}, {127, 63}), 0);
    EXPECT_GT(pb.tileList(0).size(), 0u);       // tile (0,0)
    EXPECT_EQ(pb.tileList(3).size(), 0u);       // tile (3,0): off-diag
    EXPECT_EQ(pb.tileList(4).size(), 0u);       // tile (0,1): off-diag
    EXPECT_GT(pb.tileList(7).size(), 0u);       // tile (3,1)
}

TEST(PolyListBuilder, ProgramOrderPreservedPerTile)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    PolyListBuilder builder(cfg, mem, pb);

    Cycle now = 0;
    for (PrimId i = 0; i < 5; ++i) {
        Primitive p = makeTri(i, {4, 4}, {20, 4}, {4, 20});
        now = builder.binPrimitive(p, now);
    }
    const auto &list = pb.tileList(0);
    ASSERT_EQ(list.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_EQ(pb.primitive(list[i]).id, i);
}

TEST(PolyListBuilder, TimedWritesAdvanceCursor)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    PolyListBuilder builder(cfg, mem, pb);
    const Cycle end =
        builder.binPrimitive(makeTri(0, {0, 0}, {127, 0}, {0, 63}), 0);
    EXPECT_GT(end, 0u);
    EXPECT_GT(mem.tileCache().accesses(), 0u);
    EXPECT_GT(builder.tileEntriesWritten(), 0u);
}

TEST(TileFetcher, VisitsTilesInTraversalOrder)
{
    GpuConfig cfg = smallCfg();
    cfg.tileOrder = TileOrder::SOrder;
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    TileFetcher fetcher(cfg, mem, pb);

    const auto expect = makeTileOrder(TileOrder::SOrder, cfg.tilesX(),
                                      cfg.tilesY());
    ASSERT_EQ(fetcher.numTiles(), expect.size());
    Cycle now = 0;
    for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_FALSE(fetcher.done());
        FetchedTile t = fetcher.fetchNext(now);
        EXPECT_EQ(t.tile, expect[i]);
        EXPECT_EQ(t.sequence, i);
        now = t.readyAt;
    }
    EXPECT_TRUE(fetcher.done());
}

TEST(TileFetcher, DeliversBinnedPrimitives)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    PolyListBuilder builder(cfg, mem, pb);
    builder.binPrimitive(makeTri(7, {40, 8}, {56, 8}, {40, 24}), 0);

    TileFetcher fetcher(cfg, mem, pb);
    std::size_t with_prims = 0;
    Cycle now = 0;
    while (!fetcher.done()) {
        FetchedTile t = fetcher.fetchNext(now);
        now = t.readyAt;
        if (!t.prims.empty()) {
            ++with_prims;
            EXPECT_EQ(t.tile, 1u);
            EXPECT_EQ(t.prims[0]->id, 7u);
        }
    }
    EXPECT_EQ(with_prims, 1u);
}

TEST(TileFetcher, FetchReadsConsumeTime)
{
    GpuConfig cfg = smallCfg();
    MemHierarchy mem(cfg);
    ParamBuffer pb(cfg.numTiles());
    PolyListBuilder builder(cfg, mem, pb);
    for (PrimId i = 0; i < 20; ++i)
        builder.binPrimitive(makeTri(i, {4, 4}, {20, 4}, {4, 20}), 0);

    TileFetcher fetcher(cfg, mem, pb);
    FetchedTile t = fetcher.fetchNext(1000);
    EXPECT_EQ(t.prims.size(), 20u);
    EXPECT_GT(t.readyAt, 1000u);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for the Rasterizer and frame buffer: coverage against the
 * reference predicate, the shared-edge exactly-once property (top-left
 * fill rule), attribute interpolation, tile clipping, and the
 * order-sensitivity of the blend arithmetic.
 */

#include <gtest/gtest.h>

#include <map>

#include "common/rng.hh"
#include "geom/prim_assembler.hh"
#include "raster/framebuffer.hh"
#include "raster/rasterizer.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 128;
    cfg.screenHeight = 64;
    return cfg;
}

Primitive
makeTri(Vec2f a, Vec2f b, Vec2f c)
{
    Primitive p;
    p.v[0].screen = a;
    p.v[1].screen = b;
    p.v[2].screen = c;
    p.v[0].depth = 0.25f;
    p.v[1].depth = 0.5f;
    p.v[2].depth = 0.75f;
    p.v[0].uv = {0.0f, 0.0f};
    p.v[1].uv = {1.0f, 0.0f};
    p.v[2].uv = {0.0f, 1.0f};
    return p;
}

/** Collect covered pixels (global coords) from rasterized quads. */
std::map<std::pair<int, int>, int>
coverageMap(const GpuConfig &cfg, const Primitive &prim)
{
    Rasterizer rast(cfg);
    std::map<std::pair<int, int>, int> covered;
    for (std::uint32_t ty = 0; ty < cfg.tilesY(); ++ty) {
        for (std::uint32_t tx = 0; tx < cfg.tilesX(); ++tx) {
            std::vector<Quad> quads;
            rast.rasterize(prim, {static_cast<std::int32_t>(tx),
                                  static_cast<std::int32_t>(ty)},
                           quads);
            for (const Quad &q : quads) {
                for (unsigned k = 0; k < 4; ++k) {
                    if (!q.covered(k))
                        continue;
                    const int px = static_cast<int>(tx) * 32 +
                                   q.quadInTile.x * 2 +
                                   static_cast<int>(k % 2);
                    const int py = static_cast<int>(ty) * 32 +
                                   q.quadInTile.y * 2 +
                                   static_cast<int>(k / 2);
                    covered[{px, py}]++;
                }
            }
        }
    }
    return covered;
}

TEST(Rasterizer, CoverageMatchesReferencePredicate)
{
    GpuConfig cfg = smallCfg();
    const Primitive prim = makeTri({5, 5}, {60, 12}, {20, 50});
    const auto covered = coverageMap(cfg, prim);
    EXPECT_GT(covered.size(), 100u);
    for (std::uint32_t py = 0; py < cfg.screenHeight; ++py) {
        for (std::uint32_t px = 0; px < cfg.screenWidth; ++px) {
            const bool ref = Rasterizer::pixelCovered(prim, px, py);
            const bool got = covered.count(
                {static_cast<int>(px), static_cast<int>(py)}) > 0;
            ASSERT_EQ(got, ref) << "pixel " << px << "," << py;
        }
    }
}

TEST(Rasterizer, NoPixelCoveredTwiceWithinOnePrimitive)
{
    GpuConfig cfg = smallCfg();
    const auto covered =
        coverageMap(cfg, makeTri({3, 3}, {100, 10}, {40, 60}));
    for (const auto &[pix, count] : covered)
        ASSERT_EQ(count, 1) << pix.first << "," << pix.second;
}

class SharedEdgeTest : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(SharedEdgeTest, AdjacentTrianglesCoverEachPixelOnce)
{
    // Two triangles forming a quad share the diagonal: the top-left
    // rule must shade every covered pixel exactly once.
    GpuConfig cfg = smallCfg();
    Rng rng(GetParam());
    for (int iter = 0; iter < 30; ++iter) {
        const Vec2f a{static_cast<float>(rng.nextDouble(2, 120)),
                      static_cast<float>(rng.nextDouble(2, 60))};
        const Vec2f b{static_cast<float>(rng.nextDouble(2, 120)),
                      static_cast<float>(rng.nextDouble(2, 60))};
        const Vec2f c{static_cast<float>(rng.nextDouble(2, 120)),
                      static_cast<float>(rng.nextDouble(2, 60))};
        const Vec2f d{a.x + c.x - b.x, a.y + c.y - b.y};  // parallelogram
        auto m1 = coverageMap(cfg, makeTri(a, b, c));
        auto m2 = coverageMap(cfg, makeTri(a, c, d));
        for (const auto &[pix, count] : m2)
            m1[pix] += count;
        for (const auto &[pix, count] : m1)
            ASSERT_EQ(count, 1)
                << "iter " << iter << " pixel " << pix.first << ","
                << pix.second;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedEdgeTest,
                         ::testing::Values(11u, 22u, 33u));

TEST(Rasterizer, WindingInsensitive)
{
    GpuConfig cfg = smallCfg();
    const auto cw = coverageMap(cfg, makeTri({5, 5}, {60, 12}, {20, 50}));
    const auto ccw =
        coverageMap(cfg, makeTri({5, 5}, {20, 50}, {60, 12}));
    EXPECT_EQ(cw.size(), ccw.size());
}

TEST(Rasterizer, QuadsStayInsideTheirTile)
{
    GpuConfig cfg = smallCfg();
    Rasterizer rast(cfg);
    std::vector<Quad> quads;
    const Primitive prim = makeTri({0, 0}, {127, 0}, {0, 63});
    rast.rasterize(prim, {1, 1}, quads);
    EXPECT_GT(quads.size(), 0u);
    for (const Quad &q : quads) {
        EXPECT_GE(q.quadInTile.x, 0);
        EXPECT_LT(q.quadInTile.x, 16);
        EXPECT_GE(q.quadInTile.y, 0);
        EXPECT_LT(q.quadInTile.y, 16);
    }
}

TEST(Rasterizer, InterpolatesDepthAndUv)
{
    GpuConfig cfg = smallCfg();
    Rasterizer rast(cfg);
    // Right triangle spanning a tile: attributes vary linearly.
    Primitive prim = makeTri({0, 0}, {32, 0}, {0, 32});
    std::vector<Quad> quads;
    rast.rasterize(prim, {0, 0}, quads);
    ASSERT_GT(quads.size(), 0u);
    for (const Quad &q : quads) {
        for (unsigned k = 0; k < 4; ++k) {
            if (!q.covered(k))
                continue;
            const float px = static_cast<float>(q.quadInTile.x * 2 +
                                                static_cast<int>(k % 2)) +
                             0.5f;
            const float py = static_cast<float>(q.quadInTile.y * 2 +
                                                static_cast<int>(k / 2)) +
                             0.5f;
            const float u_expect = px / 32.0f;
            const float v_expect = py / 32.0f;
            EXPECT_NEAR(q.frags[k].uv.x, u_expect, 1e-4f);
            EXPECT_NEAR(q.frags[k].uv.y, v_expect, 1e-4f);
            const float z_expect =
                0.25f + 0.25f * u_expect + 0.5f * v_expect;
            EXPECT_NEAR(q.frags[k].depth, z_expect, 1e-4f);
        }
    }
}

TEST(Rasterizer, EmptyOutsideBbox)
{
    GpuConfig cfg = smallCfg();
    Rasterizer rast(cfg);
    std::vector<Quad> quads;
    rast.rasterize(makeTri({5, 5}, {20, 5}, {5, 20}), {3, 1}, quads);
    EXPECT_TRUE(quads.empty());
}

TEST(Rasterizer, PartialEdgeTileClampsToScreen)
{
    GpuConfig cfg = smallCfg();
    cfg.screenWidth = 100;  // tile column 3 is 4 px wide
    Rasterizer rast(cfg);
    std::vector<Quad> quads;
    rast.rasterize(makeTri({90, 0}, {127, 0}, {90, 63}), {3, 0}, quads);
    for (const Quad &q : quads) {
        for (unsigned k = 0; k < 4; ++k) {
            if (!q.covered(k)) continue;
            const int px = 96 + q.quadInTile.x * 2 +
                           static_cast<int>(k % 2);
            EXPECT_LT(px, 100);
        }
    }
}

TEST(Quad, LodFromDerivatives)
{
    Quad q;
    // 2 texels of a 256-texture per pixel horizontally, 1 vertically.
    q.frags[0].uv = {0.0f, 0.0f};
    q.frags[1].uv = {2.0f / 256.0f, 0.0f};
    q.frags[2].uv = {0.0f, 1.0f / 256.0f};
    q.frags[3].uv = {2.0f / 256.0f, 1.0f / 256.0f};
    EXPECT_NEAR(q.lod(256), 1.0f, 1e-4f);  // log2(max(2,1))
    // Magnification clamps at zero.
    q.frags[1].uv = {0.25f / 256.0f, 0.0f};
    q.frags[2].uv = {0.0f, 0.25f / 256.0f};
    EXPECT_FLOAT_EQ(q.lod(256), 0.0f);
}

TEST(Quad, LodMatchesPrimitiveForAffineContent)
{
    // For affine uv mappings, the per-quad derivative LOD equals the
    // per-primitive setup LOD.
    GpuConfig cfg = smallCfg();
    Primitive prim = makeTri({0, 0}, {64, 0}, {0, 64});
    prim.v[1].uv = {1.0f, 0.0f};
    prim.v[2].uv = {0.0f, 1.0f};
    prim.lod = PrimAssembler::computeLod(prim, 512);
    Rasterizer rast(cfg);
    std::vector<Quad> quads;
    rast.rasterize(prim, {0, 0}, quads);
    ASSERT_GT(quads.size(), 0u);
    for (const Quad &q : quads)
        ASSERT_NEAR(q.lod(512), prim.lod, 1e-3f);
}

// ---------- framebuffer / blending ----------

TEST(FrameBuffer, ClearAndHash)
{
    GpuConfig cfg = smallCfg();
    FrameBuffer fb(cfg);
    const std::uint64_t h0 = fb.hash();
    fb.setPixel(3, 4, 0xdeadbeef);
    EXPECT_NE(fb.hash(), h0);
    fb.clear();
    EXPECT_EQ(fb.hash(), h0);
    EXPECT_EQ(fb.pixel(3, 4), kClearColor);
}

TEST(FrameBuffer, PixelAddressesLinear)
{
    GpuConfig cfg = smallCfg();
    FrameBuffer fb(cfg);
    EXPECT_EQ(fb.pixelAddr(1, 0) - fb.pixelAddr(0, 0), 4u);
    EXPECT_EQ(fb.pixelAddr(0, 1) - fb.pixelAddr(0, 0),
              4u * cfg.screenWidth);
}

TEST(Blend, OpaqueReplaces)
{
    EXPECT_EQ(blendPixel(0x12345678, 0xabcdef01, false), 0xabcdef01u);
}

TEST(Blend, TransparentIsOrderSensitive)
{
    const PixelColor a = shadeColor(1, 0);
    const PixelColor b = shadeColor(2, 0);
    const PixelColor ab = blendPixel(blendPixel(kClearColor, a, true),
                                     b, true);
    const PixelColor ba = blendPixel(blendPixel(kClearColor, b, true),
                                     a, true);
    EXPECT_NE(ab, ba);
}

TEST(Blend, ShadeColorDeterministic)
{
    EXPECT_EQ(shadeColor(42, 3), shadeColor(42, 3));
    EXPECT_NE(shadeColor(42, 3), shadeColor(42, 2));
    EXPECT_NE(shadeColor(42, 3), shadeColor(43, 3));
}

} // namespace
} // namespace dtexl

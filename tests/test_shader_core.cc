/**
 * @file
 * Tests for the shader core warp model: program timing, multithreaded
 * latency hiding, batch gating, texture-unit traffic, and determinism.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/shader_core.hh"
#include "mem/address_map.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

struct CoreFixture
{
    GpuConfig cfg;
    Scene scene;
    MemHierarchy mem;
    Primitive prim;
    std::vector<Quad> quad_store;

    explicit CoreFixture(std::uint16_t alu = 8, std::uint8_t tex = 1,
                         std::uint32_t max_warps = 32)
        : cfg(makeSmallCfg(max_warps)), scene(makeTinyScene(cfg)),
          mem(cfg)
    {
        prim.id = 0;
        prim.texture = 0;
        prim.shader.aluOps = alu;
        prim.shader.texSamples = tex;
        prim.shader.filter = FilterMode::Bilinear;
        prim.v[0].uv = {0.0f, 0.0f};
        prim.v[1].uv = {0.5f, 0.0f};
        prim.v[2].uv = {0.0f, 0.5f};
    }

    static GpuConfig
    makeSmallCfg(std::uint32_t max_warps)
    {
        GpuConfig cfg;
        cfg.screenWidth = 64;
        cfg.screenHeight = 64;
        cfg.maxWarpsPerCore = max_warps;
        return cfg;
    }

    /** Build n quads sampling distinct texture regions. */
    std::vector<const Quad *>
    makeQuads(std::size_t n)
    {
        quad_store.clear();
        quad_store.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            Quad q;
            q.prim = &prim;
            q.coverage = 0xF;
            const float u =
                static_cast<float>((i * 8) % 256) / 256.0f;
            const float v =
                static_cast<float>((i * 8) / 256 % 256) / 256.0f;
            for (unsigned k = 0; k < 4; ++k)
                q.frags[k].uv = {u + static_cast<float>(k % 2) / 256.0f,
                                 v + static_cast<float>(k / 2) / 256.0f};
            quad_store.push_back(q);
        }
        std::vector<const Quad *> ptrs;
        for (const Quad &q : quad_store)
            ptrs.push_back(&q);
        return ptrs;
    }
};

TEST(ShaderCore, EmptyBatch)
{
    CoreFixture f;
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto r = core.runBatch({}, {}, 100);
    EXPECT_EQ(r.start, 100u);
    EXPECT_EQ(r.finish, 100u);
    EXPECT_TRUE(r.completion.empty());
}

TEST(ShaderCore, SingleAluOnlyQuadTiming)
{
    CoreFixture f(/*alu=*/10, /*tex=*/0);
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto quads = f.makeQuads(1);
    const auto r = core.runBatch(quads, {0}, 0);
    // 10 dependent ALU ops, kAluLatency apart, single warp:
    // completion ~= 1 + 10 * kAluLatency (no overlap to exploit).
    EXPECT_GE(r.finish, 10 * ShaderCore::kAluLatency - 4);
    EXPECT_LE(r.finish, 10 * ShaderCore::kAluLatency + 8);
    EXPECT_EQ(core.stats().get("alu_ops"), 10u);
    EXPECT_EQ(core.stats().get("tex_instructions"), 0u);
    EXPECT_EQ(core.stats().get("warps"), 1u);
    EXPECT_EQ(core.stats().get("fragments"), 4u);
}

TEST(ShaderCore, TextureInstructionAccessesL1)
{
    CoreFixture f(/*alu=*/0, /*tex=*/1);
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto quads = f.makeQuads(1);
    core.runBatch(quads, {0}, 0);
    EXPECT_EQ(core.stats().get("tex_instructions"), 1u);
    EXPECT_EQ(core.stats().get("tex_samples"), 4u);  // 4 fragments
    EXPECT_GT(f.mem.textureCache(0).accesses(), 0u);
}

TEST(ShaderCore, MultithreadingHidesLatency)
{
    // Many independent warps: total time must be far less than the
    // serial sum of per-warp latencies.
    CoreFixture f(/*alu=*/8, /*tex=*/1);
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const std::size_t n = 32;
    const auto quads = f.makeQuads(n);
    std::vector<Cycle> arrivals(n, 0);
    const auto r = core.runBatch(quads, arrivals, 0);

    CoreFixture f1(/*alu=*/8, /*tex=*/1, /*max_warps=*/1);
    ShaderCore serial(0, f1.cfg, f1.mem, f1.scene);
    const auto quads1 = f1.makeQuads(n);
    const auto r1 = serial.runBatch(quads1, arrivals, 0);

    EXPECT_LT(r.finish - r.start, (r1.finish - r1.start) / 2)
        << "multithreading failed to hide latency";
}

TEST(ShaderCore, GateDelaysStart)
{
    CoreFixture f;
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto quads = f.makeQuads(4);
    std::vector<Cycle> arrivals(4, 10);
    const auto r = core.runBatch(quads, arrivals, 500);
    EXPECT_GE(r.start, 500u);
    for (Cycle c : r.completion)
        EXPECT_GT(c, 500u);
}

TEST(ShaderCore, ArrivalsRespected)
{
    CoreFixture f(/*alu=*/4, /*tex=*/0);
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto quads = f.makeQuads(2);
    const auto r = core.runBatch(quads, {0, 1000}, 0);
    EXPECT_LT(r.completion[0], 1000u);
    EXPECT_GT(r.completion[1], 1000u);
}

TEST(ShaderCore, BatchesSerializeNaturally)
{
    CoreFixture f;
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto quads = f.makeQuads(8);
    std::vector<Cycle> arrivals(8, 0);
    const auto r1 = core.runBatch(quads, arrivals, 0);
    // The next subtile is gated at the previous finish (the Fragment
    // Stage barrier); completions must not precede the gate.
    const auto r2 = core.runBatch(quads, arrivals, r1.finish);
    for (Cycle c : r2.completion)
        EXPECT_GE(c, r1.finish);
}

TEST(ShaderCore, WarmCacheSpeedsSecondRun)
{
    CoreFixture f(/*alu=*/2, /*tex=*/2);
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const auto quads = f.makeQuads(16);
    std::vector<Cycle> arrivals(16, 0);
    const auto cold = core.runBatch(quads, arrivals, 0);
    const auto warm = core.runBatch(quads, arrivals, cold.finish);
    EXPECT_LT(warm.finish - warm.start, cold.finish - cold.start);
}

TEST(ShaderCore, DeterministicAcrossInstances)
{
    CoreFixture fa, fb;
    ShaderCore a(0, fa.cfg, fa.mem, fa.scene);
    ShaderCore b(0, fb.cfg, fb.mem, fb.scene);
    const auto qa = fa.makeQuads(12);
    const auto qb = fb.makeQuads(12);
    std::vector<Cycle> arrivals;
    for (std::size_t i = 0; i < 12; ++i)
        arrivals.push_back(i * 3);
    const auto ra = a.runBatch(qa, arrivals, 0);
    const auto rb = b.runBatch(qb, arrivals, 0);
    EXPECT_EQ(ra.completion, rb.completion);
    EXPECT_EQ(ra.finish, rb.finish);
}

TEST(ShaderCore, RunBatchesInterleavesFairly)
{
    // Four cores with identical concurrent batches must finish within
    // a small spread of each other: the joint event loop may not
    // systematically starve the last core at the shared L2/DRAM.
    CoreFixture f(/*alu=*/4, /*tex=*/2);
    std::vector<std::unique_ptr<ShaderCore>> cores;
    for (CoreId p = 0; p < 4; ++p)
        cores.push_back(
            std::make_unique<ShaderCore>(p, f.cfg, f.mem, f.scene));

    const std::size_t n = 24;
    // Separate quad storage per core so textures regions differ a bit
    // but the workload is statistically identical.
    std::array<QuadStream, 4> streams;
    std::array<std::vector<std::uint32_t>, 4> indices;
    std::vector<Cycle> arrivals(n, 0);
    for (int c = 0; c < 4; ++c) {
        for (std::size_t i = 0; i < n; ++i) {
            Quad q;
            q.prim = &f.prim;
            q.coverage = 0xF;
            const float u = static_cast<float>((c * 64 + i * 2) % 256) /
                            256.0f;
            for (unsigned k = 0; k < 4; ++k)
                q.frags[k].uv = {u, static_cast<float>(k) / 256.0f};
            indices[c].push_back(streams[c].push(q));
        }
    }

    std::vector<ShaderCore *> core_ptrs;
    std::vector<ShaderCore::BatchInput> inputs;
    for (int c = 0; c < 4; ++c) {
        core_ptrs.push_back(cores[c].get());
        inputs.push_back({&streams[c], &indices[c], &arrivals, 0});
    }
    const auto results = ShaderCore::runBatches(core_ptrs, inputs);
    Cycle min_fin = results[0].finish, max_fin = results[0].finish;
    for (const auto &r : results) {
        min_fin = std::min(min_fin, r.finish);
        max_fin = std::max(max_fin, r.finish);
    }
    EXPECT_LT(max_fin - min_fin, min_fin / 2)
        << "cores drifted: " << min_fin << " vs " << max_fin;
}

TEST(ShaderCore, RunBatchesMatchesSoloRunsWhenIndependent)
{
    // With private memory systems, the joint loop reduces to the solo
    // behaviour.
    CoreFixture fa(/*alu=*/6, /*tex=*/1), fb(/*alu=*/6, /*tex=*/1);
    ShaderCore solo(0, fa.cfg, fa.mem, fa.scene);
    ShaderCore joint(0, fb.cfg, fb.mem, fb.scene);
    const auto qa = fa.makeQuads(10);
    const auto qb = fb.makeQuads(10);
    std::vector<Cycle> arrivals(10, 5);
    const auto r_solo = solo.runBatch(qa, arrivals, 0);
    QuadStream sb;
    std::vector<std::uint32_t> ib;
    for (const Quad *q : qb)
        ib.push_back(sb.push(*q));
    const auto r_joint =
        ShaderCore::runBatches({&joint}, {{&sb, &ib, &arrivals, 0}});
    EXPECT_EQ(r_solo.completion, r_joint.front().completion);
}

class WarpSchedTest : public ::testing::TestWithParam<WarpSched>
{};

TEST_P(WarpSchedTest, AllPoliciesCompleteAllWork)
{
    CoreFixture f(/*alu=*/8, /*tex=*/1, /*max_warps=*/8);
    f.cfg.warpScheduler = GetParam();
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    const std::size_t n = 40;
    const auto quads = f.makeQuads(n);
    std::vector<Cycle> arrivals(n, 0);
    const auto r = core.runBatch(quads, arrivals, 0);
    ASSERT_EQ(r.completion.size(), n);
    for (Cycle c : r.completion)
        EXPECT_GT(c, 0u);
    EXPECT_EQ(core.stats().get("warps"), n);
    EXPECT_EQ(core.stats().get("alu_ops"), n * 8);
}

INSTANTIATE_TEST_SUITE_P(Policies, WarpSchedTest,
                         ::testing::Values(WarpSched::EarliestReady,
                                           WarpSched::OldestFirst,
                                           WarpSched::Greedy));

TEST(ShaderCore, GreedyKeepsIssuingSameWarp)
{
    // With ALU-only programs and a single free-running warp pool, the
    // greedy policy must finish the first warp before the last warp
    // starts (depth-first), unlike earliest-ready (breadth-first).
    CoreFixture fg(/*alu=*/12, /*tex=*/0, /*max_warps=*/8);
    fg.cfg.warpScheduler = WarpSched::Greedy;
    ShaderCore greedy(0, fg.cfg, fg.mem, fg.scene);
    const auto qg = fg.makeQuads(8);
    std::vector<Cycle> arrivals(8, 0);
    const auto rg = greedy.runBatch(qg, arrivals, 0);

    CoreFixture fe(/*alu=*/12, /*tex=*/0, /*max_warps=*/8);
    ShaderCore earliest(0, fe.cfg, fe.mem, fe.scene);
    const auto qe = fe.makeQuads(8);
    const auto re = earliest.runBatch(qe, arrivals, 0);

    // Greedy retires the first quad much earlier.
    EXPECT_LT(rg.completion[0], re.completion[0]);
    // Total throughput is the same (issue-port bound).
    EXPECT_NEAR(static_cast<double>(rg.finish),
                static_cast<double>(re.finish),
                static_cast<double>(re.finish) * 0.2);
}

TEST(ShaderCore, PartialCoverageSamplesFewerFragments)
{
    CoreFixture f(/*alu=*/0, /*tex=*/1);
    ShaderCore core(0, f.cfg, f.mem, f.scene);
    auto quads = f.makeQuads(1);
    f.quad_store[0].coverage = 0x3;  // two fragments
    core.runBatch(quads, {0}, 0);
    EXPECT_EQ(core.stats().get("tex_samples"), 2u);
    EXPECT_EQ(core.stats().get("fragments"), 2u);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Fault-injection harness tests (see DESIGN.md "Error handling &
 * fault tolerance"): each injection site must produce a structured
 * SimError of the right kind instead of aborting; the forward-progress
 * watchdog must catch the two "hung simulation" faults (leaked barrier
 * credit, dropped memory completion) and emit a crash-report dump;
 * sibling batch jobs must complete bit-exactly next to an injected
 * failure; and the harness must be invisible when disarmed — the same
 * binary, same config, same scene renders bit-identical frames.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/fault_inject.hh"
#include "common/sim_error.hh"
#include "core/dtexl.hh"
#include "json_test_util.hh"
#include "telemetry/export.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

/** Full FrameStats equality (the bit-exactness oracle). */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
}

/** One single-frame BatchJob over a static scene. */
BatchJob
makeJob(const std::string &label, const GpuConfig &cfg,
        const Scene &scene)
{
    BatchJob job;
    job.label = label;
    job.cfg = cfg;
    const Scene *sp = &scene;
    job.scene = [sp](std::uint32_t) -> const Scene & { return *sp; };
    job.frames = 1;
    return job;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    std::stringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

TEST(FaultInject, DisarmedHarnessIsBitExact)
{
    const GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg, 0);

    GpuSimulator a(cfg, scene);
    const FrameStats fa = a.renderFrame();

    // Arm-and-disarm must leave no residue: a later simulation is
    // bit-identical to one that never saw the harness armed.
    {
        ScopedFault f(FaultSite::DropMemCompletion, 3);
    }
    GpuSimulator b(cfg, scene);
    expectSameStats(fa, b.renderFrame(), "disarmed rerun");
    EXPECT_EQ(FaultInject::global().fired(FaultSite::DropMemCompletion),
              0u);
}

TEST(FaultInject, SiteNamesRoundTripAndRejectJunk)
{
    for (std::uint32_t s = 0;
         s < static_cast<std::uint32_t>(FaultSite::kNumSites); ++s) {
        const FaultSite site = static_cast<FaultSite>(s);
        EXPECT_EQ(faultSiteFromString(toString(site)), site);
    }
    try {
        faultSiteFromString("no-such-site");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        // The message must list the legal names.
        EXPECT_NE(std::string(e.what()).find("scene-truncate"),
                  std::string::npos);
    }
}

TEST(FaultInject, SceneTruncateYieldsUserInputError)
{
    const GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg, 0);
    std::stringstream ss;
    saveScene(ss, scene);

    ScopedFault f(FaultSite::SceneTruncate);
    try {
        loadScene(ss, "injected.dscene");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        EXPECT_NE(std::string(e.what()).find("unexpected end of file"),
                  std::string::npos);
    }
    EXPECT_EQ(FaultInject::global().fired(FaultSite::SceneTruncate),
              1u);
}

TEST(FaultInject, SceneCorruptTokenYieldsUserInputError)
{
    const GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg, 0);
    std::stringstream ss;
    saveScene(ss, scene);

    ScopedFault f(FaultSite::SceneCorruptToken);
    try {
        loadScene(ss, "injected.dscene");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput);
        // The corrupted token is quoted (control byte sanitized) and
        // pinned to source:line:column.
        EXPECT_NE(std::string(e.what()).find("corrupt"),
                  std::string::npos)
            << e.what();
        EXPECT_EQ(e.context().rfind("injected.dscene:", 0), 0u)
            << e.context();
    }
}

TEST(FaultInject, ConfigMisSizeRejectedAtConstruction)
{
    const GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg, 0);

    ScopedFault f(FaultSite::ConfigMisSize);
    try {
        GpuSimulator gpu(cfg, scene);
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::Config);
    }
}

TEST(FaultInject, DroppedMemCompletionTripsWatchdogWithIsolation)
{
    const GpuConfig cfg = smallCfg();
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg, 0);

    // Clean reference for the sibling job.
    GpuSimulator ref(cfg, scene);
    const FrameStats clean = ref.renderFrame();

    setCrashReportDir(::testing::TempDir());
    ScopedFault f(FaultSite::DropMemCompletion);
    // Two jobs, serial workers: the first job absorbs the armed fault
    // and must fail on the watchdog; the second must complete and be
    // bit-identical to the clean run. The process never aborts.
    const std::vector<BatchJob> jobs = {
        makeJob("victim", cfg, scene), makeJob("sibling", cfg, scene)};
    const std::vector<BatchResult> res = runBatch(jobs, 1);

    ASSERT_EQ(res.size(), 2u);
    ASSERT_FALSE(res[0].ok);
    EXPECT_EQ(res[0].errorKind, ErrorKind::Watchdog);
    EXPECT_NE(res[0].error.find("no forward progress"),
              std::string::npos)
        << res[0].error;

    // The crash report exists and carries the pipeline-state dump.
    ASSERT_FALSE(res[0].crashReportPath.empty());
    const std::string report = readFile(res[0].crashReportPath);
    ASSERT_FALSE(report.empty()) << res[0].crashReportPath;
    EXPECT_NE(report.find("watchdog"), std::string::npos);
    EXPECT_NE(report.find("shader cores"), std::string::npos);
    EXPECT_NE(report.find("raster pipeline"), std::string::npos);
    EXPECT_NE(report.find("memory in flight"), std::string::npos);

    ASSERT_TRUE(res[1].ok) << res[1].error;
    ASSERT_EQ(res[1].frames.size(), 1u);
    expectSameStats(res[1].frames[0], clean, "sibling next to fault");
    EXPECT_EQ(batchExitCode(res), kExitPartialBatch);

    std::remove(res[0].crashReportPath.c_str());
    setCrashReportDir(".");
}

TEST(FaultInject, BarrierCreditLeakTripsWatchdogWithIsolation)
{
    GpuConfig cfg = smallCfg();
    // A shallow stage FIFO puts the leaked (never-consumed) credit at
    // the head quickly, so the stall surfaces within the first tiles.
    cfg.stageFifoDepth = 2;
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg, 0);

    GpuSimulator ref(cfg, scene);
    const FrameStats clean = ref.renderFrame();

    setCrashReportDir(::testing::TempDir());
    ScopedFault f(FaultSite::BarrierCreditLeak);
    const std::vector<BatchJob> jobs = {
        makeJob("leak-victim", cfg, scene),
        makeJob("leak-sibling", cfg, scene)};
    const std::vector<BatchResult> res = runBatch(jobs, 1);

    ASSERT_EQ(res.size(), 2u);
    ASSERT_FALSE(res[0].ok);
    EXPECT_EQ(res[0].errorKind, ErrorKind::Watchdog);
    EXPECT_EQ(FaultInject::global().fired(FaultSite::BarrierCreditLeak),
              1u);

    ASSERT_FALSE(res[0].crashReportPath.empty());
    const std::string report = readFile(res[0].crashReportPath);
    EXPECT_NE(report.find("raster pipeline"), std::string::npos);
    EXPECT_NE(report.find("fifo"), std::string::npos);

    ASSERT_TRUE(res[1].ok) << res[1].error;
    ASSERT_EQ(res[1].frames.size(), 1u);
    expectSameStats(res[1].frames[0], clean, "sibling next to leak");

    std::remove(res[0].crashReportPath.c_str());
    setCrashReportDir(".");
}

TEST(FaultInject, WatchdogBudgetIsRespectedWhenHealthy)
{
    // A tight-but-sane budget must not fire on a healthy run: the
    // baseline absorbs legitimate gaps (tile barriers, cold misses).
    GpuConfig cfg = smallCfg();
    cfg.watchdogCycles = 100000;
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg, 0);
    GpuSimulator gpu(cfg, scene);
    EXPECT_NO_THROW(gpu.renderFrame());

    // watchdog_cycles=0 disables the checks entirely (still healthy).
    GpuConfig off = smallCfg();
    off.watchdogCycles = 0;
    GpuSimulator gpu2(off, scene);
    EXPECT_NO_THROW(gpu2.renderFrame());
}

TEST(FaultInject, FailedJobStillWritesValidJsonArtifacts)
{
    const std::string stats_path =
        ::testing::TempDir() + "fault_inject_stats.json";
    TelemetryExport::global().setStatsJsonPath(stats_path);

    const GpuConfig good = smallCfg();
    GpuConfig bad = smallCfg();
    bad.tileSize = 3;  // rejected by validate() inside the job
    const Scene scene =
        generateScene(benchmarkByAlias("SoD"), good, 0);

    StatRegistry registry("fault_artifacts");
    TelemetryExport::global().attachRegistry(&registry);
    const std::vector<BatchJob> jobs = {makeJob("good", good, scene),
                                        makeJob("bad", bad, scene)};
    const std::vector<BatchResult> res =
        runBatch(jobs, 1, &registry);
    ASSERT_TRUE(res[0].ok);
    ASSERT_FALSE(res[1].ok);
    EXPECT_EQ(res[1].errorKind, ErrorKind::Config);

    // The failure path flushed a checkpoint: the stats JSON exists
    // right now (no atexit needed) and parses cleanly.
    const std::string text = readFile(stats_path);
    ASSERT_FALSE(text.empty());
    testjson::JsonValue doc;
    EXPECT_TRUE(testjson::JsonParser(text).parse(doc)) << text;
    EXPECT_EQ(doc.members.at("schema").str, "dtexl-stats-v1");

    TelemetryExport::global().flush();
    std::remove(stats_path.c_str());
}

} // namespace
} // namespace dtexl

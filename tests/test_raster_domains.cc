/**
 * @file
 * Thread-count invariance of the partitioned raster event loop:
 * GpuConfig::rasterThreads is a host-parallelism knob only, so every
 * observable output — FrameStats including the image hash, and the
 * full StatRegistry — must be bit-identical for any domain count, on
 * every preset, on both simulator paths. Also unit-tests the Channel /
 * DomainMerge primitives and WorkerPool::runGang the domains run on,
 * and proves a watchdog trip inside one domain leaves sibling batch
 * jobs bit-exact. Runs under the ThreadSanitizer CI build, which would
 * flag any racing access in the domain fan-out.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <string>
#include <vector>

#include "common/channel.hh"
#include "common/fault_inject.hh"
#include "common/sim_error.hh"
#include "common/worker_pool.hh"
#include "core/dtexl.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

/** Every FrameStats field, including the image hash. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

/**
 * Render 2 animated frames of @p alias under @p cfg with 1, 2, 4 and
 * auto raster domains; every frame of every domain count must be
 * bit-exact against the serial run.
 */
void
domainCountInvariant(GpuConfig cfg, const std::string &alias)
{
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;

    const BenchmarkParams &p = benchmarkByAlias(alias);
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);
    const Scene *frames[] = {&f0, &f1};

    GpuConfig serial_cfg = cfg;
    serial_cfg.rasterThreads = 1;
    GpuSimulator serial(serial_cfg, f0);
    std::vector<FrameStats> want;
    for (const Scene *s : frames) {
        serial.setScene(*s);
        want.push_back(serial.renderFrame());
    }

    // 0 = auto = one domain per pipeline bank.
    for (std::uint32_t threads : {2u, 4u, 0u}) {
        GpuConfig par_cfg = cfg;
        par_cfg.rasterThreads = threads;
        GpuSimulator par(par_cfg, f0);
        for (std::size_t f = 0; f < 2; ++f) {
            par.setScene(*frames[f]);
            const FrameStats fs = par.renderFrame();
            expectSameStats(want[f], fs,
                            alias + " raster-threads=" +
                                std::to_string(threads) + " frame " +
                                std::to_string(f));
        }
    }
}

TEST(RasterDomains, BaselinePresetInvariant)
{
    domainCountInvariant(makeBaselineConfig(), "SWa");
}

TEST(RasterDomains, DTexLPresetInvariant)
{
    domainCountInvariant(makeDTexLConfig(), "GTr");
}

TEST(RasterDomains, UpperBoundPresetInvariant)
{
    // numPipelines = 1 here, so every domain count resolves to the
    // serial loop; the knob must be a no-op, never a crash.
    domainCountInvariant(makeUpperBoundConfig(), "SoD");
}

TEST(RasterDomains, ExtensionsInvariant)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.hierarchicalZ = true;
    cfg.transactionElimination = true;
    cfg.texturePrefetch = true;
    domainCountInvariant(cfg, "CCS");
}

TEST(RasterDomains, ReferencePathInvariant)
{
    // The merge hook sits in both event-loop implementations; the
    // reference (non-fast-path) loop must partition bit-exactly too.
    GpuConfig cfg = makeDTexLConfig();
    cfg.simFastPath = false;
    domainCountInvariant(cfg, "GTr");
}

TEST(RasterDomains, ComposesWithGeometryThreads)
{
    // All three levels of the thread hierarchy at once: the geometry
    // fan-out and the raster domains share nothing but the WorkerPool
    // pattern, but this is the configuration real perf runs use.
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    const Scene scene = generateScene(benchmarkByAlias("Mze"), cfg, 0);

    GpuConfig serial_cfg = cfg;
    serial_cfg.geomThreads = 1;
    serial_cfg.rasterThreads = 1;
    GpuConfig par_cfg = cfg;
    par_cfg.geomThreads = 4;
    par_cfg.rasterThreads = 4;

    GpuSimulator serial(serial_cfg, scene);
    GpuSimulator par(par_cfg, scene);
    expectSameStats(serial.renderFrame(), par.renderFrame(),
                    "Mze geom=4 raster=4");
}

/**
 * The flat stats-JSON dump (what --stats-json writes) must match
 * key-for-key across domain counts — same paths, same values — except
 * the host wall-clock counters which are inherently non-deterministic.
 * Identical paths also proves the domain machinery adds no registry
 * nodes of its own (the per-domain wall breakdown travels through
 * BatchResult::domainWallMs instead).
 */
TEST(RasterDomains, StatRegistryBitExact)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg, 0);

    GpuConfig serial_cfg = cfg;
    serial_cfg.rasterThreads = 1;
    GpuConfig par_cfg = cfg;
    par_cfg.rasterThreads = 4;

    StatRegistry serial_reg("serial"), par_reg("par");
    GpuSimulator serial(serial_cfg, scene);
    GpuSimulator par(par_cfg, scene);
    serial.setStatRegistry(&serial_reg, "engine");
    par.setStatRegistry(&par_reg, "engine");
    (void)serial.renderFrame();
    (void)par.renderFrame();

    ASSERT_EQ(serial_reg.paths(), par_reg.paths());
    for (const std::string &path : serial_reg.paths()) {
        const auto &a = serial_reg.node(path).counters();
        const auto &b = par_reg.node(path).counters();
        ASSERT_EQ(a.size(), b.size()) << path;
        for (const auto &[key, value] : a) {
            if (key == "wall_us")
                continue;
            EXPECT_EQ(value, b.at(key)) << path << "." << key;
        }
    }
}

/**
 * The golden-result pins (tests/test_golden_results.cc, the values
 * the figure CSVs are computed from) must hold verbatim under a
 * partitioned loop — the strongest single-number witness that the
 * merge reproduces the serial simulation.
 */
TEST(RasterDomains, GoldenPinsHoldAcrossDomains)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    cfg.rasterThreads = 4;
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg, 0);
    GpuSimulator sim(cfg, scene);
    const FrameStats fs = sim.renderFrame();
    EXPECT_EQ(fs.totalCycles, 38907u);
    EXPECT_EQ(fs.quadsShaded, 15662u);
    EXPECT_EQ(fs.l2Accesses, 5038u);
    EXPECT_EQ(fs.quadsPerSc,
              (std::array<std::uint64_t, 4>{3721, 3941, 3856, 4144}));
    EXPECT_EQ(fs.barrierIdleCycles,
              (std::array<std::uint64_t, 4>{229, 231, 261, 263}));
}

/**
 * Telemetry attribution (per-unit stall cycles, timeline samples) is
 * partly recorded from inside the domain loops; it must still be
 * deterministic across domain counts.
 */
TEST(RasterDomains, TelemetryInvariant)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.telemetryLevel = 2;
    domainCountInvariant(cfg, "GTr");
}

/**
 * A dropped memory completion parks one domain's cores forever; the
 * watchdog must trip, surface as a structured Watchdog SimError
 * through runBatch's fault isolation, and the sibling job — and any
 * later simulation in the same process — must stay bit-exact.
 */
TEST(RasterDomains, WatchdogInOneDomainIsolatesSiblings)
{
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    cfg.rasterThreads = 4;
    const Scene scene = generateScene(benchmarkByAlias("GTr"), cfg, 0);

    // Clean reference (serial, for independence from the machinery
    // under test).
    GpuConfig serial_cfg = cfg;
    serial_cfg.rasterThreads = 1;
    GpuSimulator ref(serial_cfg, scene);
    const FrameStats clean = ref.renderFrame();

    setCrashReportDir(::testing::TempDir());
    {
        ScopedFault f(FaultSite::DropMemCompletion);
        BatchJob victim, sibling;
        victim.label = "victim";
        victim.cfg = cfg;
        const Scene *sp = &scene;
        victim.scene = [sp](std::uint32_t) -> const Scene & {
            return *sp;
        };
        victim.frames = 1;
        sibling = victim;
        sibling.label = "sibling";
        const std::vector<BatchResult> res =
            runBatch({victim, sibling}, 1);

        ASSERT_EQ(res.size(), 2u);
        ASSERT_FALSE(res[0].ok);
        EXPECT_EQ(res[0].errorKind, ErrorKind::Watchdog);
        EXPECT_NE(res[0].error.find("no forward progress"),
                  std::string::npos)
            << res[0].error;
        ASSERT_TRUE(res[1].ok) << res[1].error;
        ASSERT_EQ(res[1].frames.size(), 1u);
        expectSameStats(res[1].frames[0], clean,
                        "sibling next to domain fault");
        // Perf plumbing: the completing job reports one wall-time
        // entry per domain (what sim_cli's "domains:" line prints).
        EXPECT_EQ(res[1].domainWallMs.size(), 4u);
        std::remove(res[0].crashReportPath.c_str());
    }
    setCrashReportDir(".");

    // The process (gates, merge, pools) carries no residue: a fresh
    // 4-domain simulation after the fault is still bit-exact.
    GpuSimulator after(cfg, scene);
    expectSameStats(after.renderFrame(), clean, "fresh run after fault");
}

TEST(Channel, FifoOrderAndCapacity)
{
    Channel<int> ch(2);
    EXPECT_EQ(ch.capacity(), 2u);
    EXPECT_TRUE(ch.tryPush(1));
    EXPECT_TRUE(ch.tryPush(2));
    EXPECT_FALSE(ch.tryPush(3)) << "full channel must reject";
    EXPECT_EQ(ch.size(), 2u);

    auto a = ch.tryPop();
    auto b = ch.tryPop();
    auto c = ch.tryPop();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, 1);
    EXPECT_EQ(*b, 2);
    EXPECT_FALSE(c.has_value()) << "empty channel must report empty";
}

TEST(Channel, CloseWakesAndDrains)
{
    Channel<int> ch(4);
    EXPECT_TRUE(ch.push(7));
    ch.close();
    EXPECT_FALSE(ch.push(8)) << "push after close must fail";
    auto a = ch.pop();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a, 7);
    EXPECT_FALSE(ch.pop().has_value())
        << "closed and drained returns nullopt, not a block";
}

TEST(Channel, BlockingHandoffAcrossThreads)
{
    Channel<int> ch(1);
    std::vector<int> got;
    std::thread consumer([&] {
        while (auto v = ch.pop())
            got.push_back(*v);
    });
    for (int i = 0; i < 100; ++i)
        EXPECT_TRUE(ch.push(i));
    ch.close();
    consumer.join();
    ASSERT_EQ(got.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST(DomainMerge, KeysOrderByCycleThenCore)
{
    // Same cycle: the core index breaks the tie, so keys are unique.
    EXPECT_LT(DomainMerge::packKey(5, 0), DomainMerge::packKey(5, 1));
    EXPECT_LT(DomainMerge::packKey(5, 3), DomainMerge::packKey(6, 0));
    // The fault-injection sentinel (2^62) saturates without wrapping:
    // still larger than any real cycle, still unique per core.
    const Cycle sentinel = Cycle{1} << 62;
    EXPECT_LT(DomainMerge::packKey(1'000'000'000, 3),
              DomainMerge::packKey(sentinel, 0));
    EXPECT_LT(DomainMerge::packKey(sentinel, 0),
              DomainMerge::packKey(sentinel, 1));
    EXPECT_LT(DomainMerge::packKey(sentinel, 3), DomainMerge::kDoneKey);
}

TEST(DomainMerge, MinimalDomainNeverWaitsAndFinishUnblocks)
{
    DomainMerge merge;
    merge.reset(2);
    merge.publish(0, DomainMerge::packKey(10, 0));
    merge.publish(1, DomainMerge::packKey(20, 1));
    // Domain 0 holds the global minimum: returns immediately.
    merge.awaitTurn(0);
    // Domain 1 must wait for domain 0 — let a thread finish 0 while 1
    // spins; awaitTurn(1) returning proves finish() unblocked it.
    std::thread t([&] { merge.finish(0); });
    merge.awaitTurn(1);
    t.join();
    merge.awaitTurn(1);  // finished sibling never blocks again
}

TEST(WorkerPool, GangRunsAllMembersConcurrently)
{
    // Every member spins until all arrived: completes only if runGang
    // really gives each index its own concurrently scheduled thread
    // (parallelFor's cursor could starve one and deadlock here).
    WorkerPool pool(4);
    std::atomic<int> arrived{0};
    pool.runGang(4, [&](std::size_t) {
        arrived.fetch_add(1, std::memory_order_relaxed);
        while (arrived.load(std::memory_order_relaxed) < 4)
            std::this_thread::yield();
    });
    EXPECT_EQ(arrived.load(), 4);
}

TEST(WorkerPool, GangRethrowsLowestIndexAfterAllReturn)
{
    WorkerPool pool(4);
    std::atomic<int> completed{0};
    try {
        pool.runGang(4, [&](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("gang-2");
            if (i == 1)
                throw std::runtime_error("gang-1");
            completed.fetch_add(1, std::memory_order_relaxed);
        });
        FAIL() << "expected the gang to rethrow";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "gang-1")
            << "lowest-index exception wins deterministically";
    }
    EXPECT_EQ(completed.load(), 2)
        << "non-throwing members must still have run";

    // The pool survives a throwing gang.
    std::atomic<int> again{0};
    pool.runGang(3, [&](std::size_t) {
        again.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(again.load(), 3);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Tests for the subtile layouts (Figure 6): equal-sized partitions,
 * bijective slot numbering, the adjacency properties that define
 * fine-grained vs coarse-grained groupings, and mirror permutations.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "sched/subtile_layout.hh"

namespace dtexl {
namespace {

constexpr std::uint32_t kSide = 16;  // 32x32 tile in quads

class AllGroupingsTest : public ::testing::TestWithParam<QuadGrouping>
{};

TEST_P(AllGroupingsTest, PartitionIsEqualSized)
{
    SubtileLayout layout(GetParam(), kSide);
    std::array<std::uint32_t, kNumSubtiles> counts{};
    for (std::uint32_t y = 0; y < kSide; ++y) {
        for (std::uint32_t x = 0; x < kSide; ++x) {
            const std::uint8_t s = layout.subtileOf(
                {static_cast<std::int32_t>(x),
                 static_cast<std::int32_t>(y)});
            ASSERT_LT(s, kNumSubtiles);
            ++counts[s];
        }
    }
    for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
        EXPECT_EQ(counts[s], kSide * kSide / 4) << toString(GetParam());
}

TEST_P(AllGroupingsTest, SlotsAreBijectivePerSubtile)
{
    SubtileLayout layout(GetParam(), kSide);
    std::array<std::set<std::uint16_t>, kNumSubtiles> slots;
    for (std::uint32_t y = 0; y < kSide; ++y) {
        for (std::uint32_t x = 0; x < kSide; ++x) {
            const Coord2 q{static_cast<std::int32_t>(x),
                           static_cast<std::int32_t>(y)};
            EXPECT_TRUE(
                slots[layout.subtileOf(q)].insert(layout.slotOf(q))
                    .second);
        }
    }
    for (std::uint8_t s = 0; s < kNumSubtiles; ++s) {
        EXPECT_EQ(slots[s].size(), layout.quadsPerSubtile());
        EXPECT_EQ(*slots[s].rbegin(), layout.quadsPerSubtile() - 1);
    }
}

TEST_P(AllGroupingsTest, SmallerTilesAlsoBalanced)
{
    // 8x8 and 4x4 tiles (16x16 and 8x8 pixels).
    for (std::uint32_t side : {4u, 8u}) {
        SubtileLayout layout(GetParam(), side);
        std::array<std::uint32_t, kNumSubtiles> counts{};
        for (std::uint32_t y = 0; y < side; ++y)
            for (std::uint32_t x = 0; x < side; ++x)
                ++counts[layout.subtileOf(
                    {static_cast<std::int32_t>(x),
                     static_cast<std::int32_t>(y)})];
        for (std::uint8_t s = 0; s < kNumSubtiles; ++s)
            EXPECT_EQ(counts[s], side * side / 4)
                << toString(GetParam()) << " side " << side;
    }
}

INSTANTIATE_TEST_SUITE_P(Figure6, AllGroupingsTest,
                         ::testing::ValuesIn(kAllQuadGroupings));

// ---------- FG adjacency properties ----------

TEST(Layout, FGCheckerNoAdjacentSharing)
{
    SubtileLayout layout(QuadGrouping::FGChecker, kSide);
    for (std::int32_t y = 0; y < static_cast<std::int32_t>(kSide); ++y) {
        for (std::int32_t x = 0;
             x + 1 < static_cast<std::int32_t>(kSide); ++x) {
            EXPECT_NE(layout.subtileOf({x, y}),
                      layout.subtileOf({x + 1, y}));
        }
    }
    for (std::int32_t y = 0; y + 1 < static_cast<std::int32_t>(kSide);
         ++y)
        for (std::int32_t x = 0; x < static_cast<std::int32_t>(kSide);
             ++x)
            EXPECT_NE(layout.subtileOf({x, y}),
                      layout.subtileOf({x, y + 1}));
}

TEST(Layout, FGXShift2NoAdjacentSharing)
{
    SubtileLayout layout(QuadGrouping::FGXShift2, kSide);
    for (std::int32_t y = 0; y < 16; ++y) {
        for (std::int32_t x = 0; x < 16; ++x) {
            if (x + 1 < 16) {
                EXPECT_NE(layout.subtileOf({x, y}),
                          layout.subtileOf({x + 1, y}));
            }
            if (y + 1 < 16) {
                EXPECT_NE(layout.subtileOf({x, y}),
                          layout.subtileOf({x, y + 1}));
            }
        }
    }
}

TEST(Layout, FGVDominoAtMostTwoVerticalRun)
{
    SubtileLayout layout(QuadGrouping::FGVDomino, kSide);
    for (std::int32_t x = 0; x < 16; ++x) {
        int run = 1;
        for (std::int32_t y = 1; y < 16; ++y) {
            if (layout.subtileOf({x, y}) == layout.subtileOf({x, y - 1}))
                ++run;
            else
                run = 1;
            EXPECT_LE(run, 2);
        }
    }
    // Horizontal neighbours always differ.
    for (std::int32_t y = 0; y < 16; ++y)
        for (std::int32_t x = 0; x + 1 < 16; ++x)
            EXPECT_NE(layout.subtileOf({x, y}),
                      layout.subtileOf({x + 1, y}));
}

// ---------- CG shape properties ----------

TEST(Layout, CGSquareIsQuadrants)
{
    SubtileLayout layout(QuadGrouping::CGSquare, kSide);
    EXPECT_EQ(layout.subtileOf({0, 0}), 0);
    EXPECT_EQ(layout.subtileOf({15, 0}), 1);
    EXPECT_EQ(layout.subtileOf({0, 15}), 2);
    EXPECT_EQ(layout.subtileOf({15, 15}), 3);
    EXPECT_EQ(layout.subtileOf({7, 7}), 0);
    EXPECT_EQ(layout.subtileOf({8, 8}), 3);
}

TEST(Layout, CGRectsAreBands)
{
    // CG-yrect: horizontal strips (split along y).
    SubtileLayout yr(QuadGrouping::CGYRect, kSide);
    for (std::int32_t x = 0; x < 16; ++x) {
        EXPECT_EQ(yr.subtileOf({x, 0}), 0);
        EXPECT_EQ(yr.subtileOf({x, 5}), 1);
        EXPECT_EQ(yr.subtileOf({x, 10}), 2);
        EXPECT_EQ(yr.subtileOf({x, 15}), 3);
    }
    // CG-xrect: vertical strips (split along x).
    SubtileLayout xr(QuadGrouping::CGXRect, kSide);
    for (std::int32_t y = 0; y < 16; ++y) {
        EXPECT_EQ(xr.subtileOf({0, y}), 0);
        EXPECT_EQ(xr.subtileOf({15, y}), 3);
    }
}

/**
 * Contiguity metric: fraction of quads with at least one edge-adjacent
 * quad in the same subtile. CG layouts must score near 1; FG layouts
 * with no-adjacent-sharing must score 0.
 */
double
contiguity(QuadGrouping g)
{
    SubtileLayout layout(g, kSide);
    int with_friend = 0;
    for (std::int32_t y = 0; y < 16; ++y) {
        for (std::int32_t x = 0; x < 16; ++x) {
            const std::uint8_t s = layout.subtileOf({x, y});
            const Coord2 nbrs[4] = {
                {x - 1, y}, {x + 1, y}, {x, y - 1}, {x, y + 1}};
            for (const Coord2 &n : nbrs) {
                if (n.x < 0 || n.x >= 16 || n.y < 0 || n.y >= 16)
                    continue;
                if (layout.subtileOf(n) == s) {
                    ++with_friend;
                    break;
                }
            }
        }
    }
    return with_friend / 256.0;
}

TEST(Layout, CoarseGroupingsAreContiguous)
{
    EXPECT_GT(contiguity(QuadGrouping::CGSquare), 0.99);
    EXPECT_GT(contiguity(QuadGrouping::CGXRect), 0.99);
    EXPECT_GT(contiguity(QuadGrouping::CGYRect), 0.99);
    EXPECT_GT(contiguity(QuadGrouping::CGTriangle), 0.9);
    EXPECT_EQ(contiguity(QuadGrouping::FGChecker), 0.0);
    EXPECT_EQ(contiguity(QuadGrouping::FGXShift2), 0.0);
}

// ---------- mirrors and centroids ----------

TEST(Layout, CGSquareMirrors)
{
    SubtileLayout layout(QuadGrouping::CGSquare, kSide);
    ASSERT_TRUE(layout.mirrorXBijective());
    ASSERT_TRUE(layout.mirrorYBijective());
    EXPECT_EQ(layout.mirrorX(),
              (std::array<std::uint8_t, 4>{1, 0, 3, 2}));
    EXPECT_EQ(layout.mirrorY(),
              (std::array<std::uint8_t, 4>{2, 3, 0, 1}));
}

TEST(Layout, CGYRectMirrors)
{
    // Horizontal bands: x-mirror maps each band to itself, y-mirror
    // reverses the band order.
    SubtileLayout layout(QuadGrouping::CGYRect, kSide);
    ASSERT_TRUE(layout.mirrorXBijective());
    ASSERT_TRUE(layout.mirrorYBijective());
    EXPECT_EQ(layout.mirrorX(),
              (std::array<std::uint8_t, 4>{0, 1, 2, 3}));
    EXPECT_EQ(layout.mirrorY(),
              (std::array<std::uint8_t, 4>{3, 2, 1, 0}));
}

TEST(Layout, CGSquareCentroids)
{
    SubtileLayout layout(QuadGrouping::CGSquare, kSide);
    EXPECT_LT(layout.centroid(0).x, layout.centroid(1).x);
    EXPECT_LT(layout.centroid(0).y, layout.centroid(2).y);
    EXPECT_DOUBLE_EQ(layout.centroid(0).x, 3.5);
    EXPECT_DOUBLE_EQ(layout.centroid(3).x, 11.5);
}

TEST(Layout, GroupQuadMatchesLayoutForRegularPatterns)
{
    // The standalone mapping function and the layout agree except for
    // CG-triangle, whose layout applies the balance fix-up.
    for (QuadGrouping g : kAllQuadGroupings) {
        if (g == QuadGrouping::CGTriangle)
            continue;
        SubtileLayout layout(g, kSide);
        for (std::int32_t y = 0; y < 16; ++y)
            for (std::int32_t x = 0; x < 16; ++x)
                EXPECT_EQ(layout.subtileOf({x, y}),
                          groupQuad(g, {x, y}, kSide))
                    << toString(g);
    }
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Property tests for the tile traversal orders, over randomized grid
 * shapes rather than the hand-picked cases of test_sfc.cc:
 *
 *  - every order is a bijection of the WxH grid (each tile ID appears
 *    exactly once and decodes to in-bounds coordinates);
 *  - consecutive Hilbert tiles are grid-adjacent within a sub-frame,
 *    and overall adjacency stays near 1 on any grid;
 *  - consecutive S-order tiles are always grid-adjacent;
 *  - the Hilbert cell mapping round-trips for random cells.
 *
 * The generator is a fixed-seed xorshift so failures replay exactly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/policies.hh"
#include "sfc/hilbert.hh"
#include "sfc/morton.hh"
#include "sfc/tile_order.hh"

namespace dtexl {
namespace {

class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    }

    /** Uniform in [lo, hi]. */
    std::uint32_t
    range(std::uint32_t lo, std::uint32_t hi)
    {
        return lo + static_cast<std::uint32_t>(next() % (hi - lo + 1));
    }

  private:
    std::uint64_t state;
};

bool
adjacent(TileId a, TileId b, std::uint32_t tiles_x)
{
    const Coord2 ca = tileCoord(a, tiles_x);
    const Coord2 cb = tileCoord(b, tiles_x);
    const std::int32_t dx = ca.x > cb.x ? ca.x - cb.x : cb.x - ca.x;
    const std::int32_t dy = ca.y > cb.y ? ca.y - cb.y : cb.y - ca.y;
    return dx + dy == 1;
}

TEST(SfcProps, EveryOrderBijectsArbitraryGrids)
{
    Rng rng(0x5eed0001);
    for (int trial = 0; trial < 60; ++trial) {
        const std::uint32_t tx = rng.range(1, 70);
        const std::uint32_t ty = rng.range(1, 40);
        for (TileOrder order : kAllTileOrders) {
            const std::vector<TileId> trav =
                makeTileOrder(order, tx, ty);
            ASSERT_EQ(trav.size(), std::size_t{tx} * ty)
                << toString(order) << " " << tx << "x" << ty;
            std::vector<bool> seen(trav.size(), false);
            for (TileId id : trav) {
                ASSERT_LT(id, trav.size())
                    << toString(order) << " " << tx << "x" << ty;
                ASSERT_FALSE(seen[id])
                    << toString(order) << " duplicates tile " << id
                    << " on " << tx << "x" << ty;
                seen[id] = true;
                const Coord2 c = tileCoord(id, tx);
                ASSERT_LT(static_cast<std::uint32_t>(c.x), tx);
                ASSERT_LT(static_cast<std::uint32_t>(c.y), ty);
            }
        }
    }
}

TEST(SfcProps, SOrderStepsAreAlwaysAdjacent)
{
    Rng rng(0x5eed0002);
    for (int trial = 0; trial < 40; ++trial) {
        const std::uint32_t tx = rng.range(1, 80);
        const std::uint32_t ty = rng.range(1, 48);
        const std::vector<TileId> trav =
            makeTileOrder(TileOrder::SOrder, tx, ty);
        for (std::size_t i = 1; i < trav.size(); ++i) {
            ASSERT_TRUE(adjacent(trav[i - 1], trav[i], tx))
                << tx << "x" << ty << " step " << i;
        }
        if (trav.size() > 1)
            EXPECT_DOUBLE_EQ(adjacencyFraction(trav, tx), 1.0);
    }
}

TEST(SfcProps, HilbertStepsAdjacentWithinFullSubframes)
{
    // The rectangular adaptation tiles the screen with 8x8 Hilbert
    // sub-frames: a step may jump between sub-frames, and partial edge
    // sub-frames skip out-of-grid cells, but inside a sub-frame that
    // lies fully within the grid the curve property holds exactly.
    Rng rng(0x5eed0003);
    const auto side = static_cast<std::int32_t>(kHilbertSubframeSide);
    for (int trial = 0; trial < 40; ++trial) {
        const std::uint32_t tx = rng.range(8, 70);
        const std::uint32_t ty = rng.range(8, 40);
        const std::vector<TileId> trav =
            makeTileOrder(TileOrder::RectHilbert, tx, ty);
        for (std::size_t i = 1; i < trav.size(); ++i) {
            const Coord2 a = tileCoord(trav[i - 1], tx);
            const Coord2 b = tileCoord(trav[i], tx);
            const bool same_subframe =
                a.x / side == b.x / side && a.y / side == b.y / side;
            const bool full_subframe =
                static_cast<std::uint32_t>((a.x / side + 1) * side) <=
                    tx &&
                static_cast<std::uint32_t>((a.y / side + 1) * side) <=
                    ty;
            if (same_subframe && full_subframe) {
                ASSERT_TRUE(adjacent(trav[i - 1], trav[i], tx))
                    << tx << "x" << ty << " step " << i << " ("
                    << a.x << "," << a.y << ")->(" << b.x << ","
                    << b.y << ")";
            }
        }
    }
}

TEST(SfcProps, HilbertAdjacencyBeatsZOrderOnRandomGrids)
{
    // Z-order breaks adjacency on every diagonal step (~half of all
    // steps), while the Hilbert adaptation only jumps at sub-frame
    // seams and partial edge strips.
    Rng rng(0x5eed0004);
    for (int trial = 0; trial < 12; ++trial) {
        const std::uint32_t tx = rng.range(17, 70);
        const std::uint32_t ty = rng.range(17, 40);
        const double h = adjacencyFraction(
            makeTileOrder(TileOrder::RectHilbert, tx, ty), tx);
        const double z = adjacencyFraction(
            makeTileOrder(TileOrder::ZOrder, tx, ty), tx);
        EXPECT_GT(h, 0.75) << tx << "x" << ty;
        EXPECT_GT(h, z) << tx << "x" << ty;
    }
}

TEST(SfcProps, HilbertCellMappingRoundTrips)
{
    Rng rng(0x5eed0005);
    for (std::uint32_t side : {2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
        for (int trial = 0; trial < 200; ++trial) {
            const std::uint32_t x = rng.range(0, side - 1);
            const std::uint32_t y = rng.range(0, side - 1);
            const std::uint64_t d = hilbertXY2D(side, x, y);
            ASSERT_LT(d, std::uint64_t{side} * side);
            std::uint32_t rx = 0, ry = 0;
            hilbertD2XY(side, d, rx, ry);
            ASSERT_EQ(rx, x) << "side " << side;
            ASSERT_EQ(ry, y) << "side " << side;
        }
    }
}

TEST(SfcProps, ZOrderMatchesMortonOnSquarePowerOfTwoGrids)
{
    // On a 2^k square grid, the Z traversal must be exactly the
    // Morton sequence (the property the texture layout shares): the
    // Morton code of consecutive traversal entries strictly ascends,
    // and with the permutation property that pins the whole order.
    for (std::uint32_t side : {2u, 4u, 8u, 16u, 32u}) {
        const std::vector<TileId> trav =
            makeTileOrder(TileOrder::ZOrder, side, side);
        ASSERT_EQ(trav.size(), std::size_t{side} * side);
        std::uint64_t prev = 0;
        for (std::size_t d = 0; d < trav.size(); ++d) {
            const Coord2 c = tileCoord(trav[d], side);
            const std::uint64_t code =
                mortonEncode(static_cast<std::uint32_t>(c.x),
                             static_cast<std::uint32_t>(c.y));
            EXPECT_EQ(code, d) << "side " << side;
            if (d > 0)
                EXPECT_GT(code, prev);
            prev = code;
        }
    }
}

} // namespace
} // namespace dtexl

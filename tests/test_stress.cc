/**
 * @file
 * Tests for the stress-workload suite: structural validity,
 * determinism, scheduler-independence of the rendered images, and the
 * adversarial properties each scene is designed to have.
 */

#include <gtest/gtest.h>

#include "core/gpu.hh"
#include "workloads/stress.hh"

namespace dtexl {
namespace {

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

const StressCase &
byName(const std::vector<StressCase> &suite, const std::string &name)
{
    for (const StressCase &c : suite)
        if (c.name == name)
            return c;
    ADD_FAILURE() << "missing stress case " << name;
    static StressCase empty;
    return empty;
}

TEST(Stress, SuiteStructure)
{
    const auto suite = makeStressSuite(smallCfg());
    ASSERT_EQ(suite.size(), 5u);
    for (const StressCase &c : suite) {
        EXPECT_FALSE(c.name.empty());
        EXPECT_FALSE(c.scene.draws.empty()) << c.name;
        EXPECT_FALSE(c.scene.textures.empty()) << c.name;
        for (const DrawCommand &d : c.scene.draws) {
            EXPECT_LT(d.texture, c.scene.textures.size()) << c.name;
            for (std::uint32_t idx : d.indices)
                EXPECT_LT(idx, d.vertices.size()) << c.name;
        }
    }
}

TEST(Stress, Deterministic)
{
    const GpuConfig cfg = smallCfg();
    const auto a = makeStressSuite(cfg);
    const auto b = makeStressSuite(cfg);
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].scene.draws.size(), b[i].scene.draws.size());
        for (std::size_t d = 0; d < a[i].scene.draws.size(); ++d)
            EXPECT_EQ(a[i].scene.draws[d].vertices[0].pos,
                      b[i].scene.draws[d].vertices[0].pos);
    }
}

TEST(Stress, ImagesSchedulerIndependent)
{
    const GpuConfig base = smallCfg();
    GpuConfig dtexl_cfg = makeDTexLConfig();
    dtexl_cfg.screenWidth = base.screenWidth;
    dtexl_cfg.screenHeight = base.screenHeight;
    dtexl_cfg.hierarchicalZ = true;

    for (const StressCase &c : makeStressSuite(base)) {
        GpuSimulator a(base, c.scene), b(dtexl_cfg, c.scene);
        EXPECT_EQ(a.renderFrame().imageHash, b.renderFrame().imageHash)
            << c.name;
    }
}

TEST(Stress, SubtileHotspotImbalancesCoarseGroupingOnly)
{
    // The hotspot sits in the top-left quadrant of every tile: under
    // CG-square one SC gets all of it (big per-tile deviation); under
    // FG-xshift2 the quads spread evenly.
    const GpuConfig base = smallCfg();
    GpuConfig cg = base;
    cg.grouping = QuadGrouping::CGSquare;
    const auto suite = makeStressSuite(base);
    const StressCase &hot = byName(suite, "subtile-hotspot");

    GpuSimulator fg_gpu(base, hot.scene);
    GpuSimulator cg_gpu(cg, hot.scene);
    const FrameStats f_fg = fg_gpu.renderFrame();
    const FrameStats f_cg = cg_gpu.renderFrame();
    EXPECT_GT(f_cg.tileQuadDeviation.mean(), 0.5);
    EXPECT_LT(f_fg.tileQuadDeviation.mean(), 0.1);
}

TEST(Stress, DeepOverdrawDefeatsEarlyZ)
{
    // Back-to-front opaque layers: every quad passes the depth test.
    const GpuConfig cfg = smallCfg();
    const auto suite = makeStressSuite(cfg);
    const StressCase &deep = byName(suite, "deep-overdraw");
    GpuSimulator gpu(cfg, deep.scene);
    const FrameStats fs = gpu.renderFrame();
    EXPECT_EQ(fs.quadsCulledEarlyZ, 0u);
    // 8 layers over the whole screen.
    EXPECT_GE(fs.quadsShaded,
              8u * (cfg.screenWidth / 2) * (cfg.screenHeight / 2));
}

TEST(Stress, SingleFullscreenMaximisesLocalityGain)
{
    // The giant textured quad is the best case for CG grouping: the
    // L2 decrease must exceed the noise scene's.
    const GpuConfig base = smallCfg();
    GpuConfig cg = base;
    cg.grouping = QuadGrouping::CGSquare;
    const auto suite = makeStressSuite(base);

    auto l2_decrease = [&](const StressCase &c) {
        GpuSimulator a(base, c.scene), b(cg, c.scene);
        const double base_l2 =
            static_cast<double>(a.renderFrame().l2Accesses);
        const double cg_l2 =
            static_cast<double>(b.renderFrame().l2Accesses);
        return 1.0 - cg_l2 / base_l2;
    };
    EXPECT_GT(l2_decrease(byName(suite, "single-fullscreen")),
              l2_decrease(byName(suite, "uniform-noise")) + 0.2);
}

TEST(Stress, HiZHelpsFrontToBackNotBackToFront)
{
    // deep-overdraw paints back-to-front: HiZ can cull nothing.
    const GpuConfig base = smallCfg();
    GpuConfig hiz = base;
    hiz.hierarchicalZ = true;
    const auto suite = makeStressSuite(base);
    const StressCase &deep = byName(suite, "deep-overdraw");
    GpuSimulator gpu(hiz, deep.scene);
    EXPECT_EQ(gpu.renderFrame().quadsCulledHiZ, 0u);
}

} // namespace
} // namespace dtexl

/**
 * @file
 * Scalar-vs-SIMD bit-exactness battery for the portable lane layer
 * (common/simd.hh) and every kernel built on it: the lane primitives'
 * scalar semantics (std::max/std::min and ordered-compare behaviour on
 * NaN and signed zeros), the Morton and Hilbert codecs, the striped
 * FNV checksum, batched LOD (QuadStream::lod4), batched texel
 * footprints (quadSampleFootprints), the vectorized rasterizer, and
 * finally whole-frame equivalence: FrameStats, registry counters and
 * the image hash must be byte-identical under --simd=auto and
 * --simd=scalar for every preset, both simulator paths and threaded
 * shapes. Also holds the pow2-texture-side regression tests (the
 * repeat-addressing wrap mask assumes it) and the --simd plumbing
 * tests.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "common/serial.hh"
#include "common/sim_error.hh"
#include "common/simd.hh"
#include "core/dtexl.hh"
#include "raster/rasterizer.hh"
#include "raster/quad_stream.hh"
#include "sfc/hilbert.hh"
#include "sfc/morton.hh"
#include "sfc/morton_lanes.hh"
#include "sfc/tile_order.hh"
#include "telemetry/cli_options.hh"
#include "texture/sampler.hh"
#include "texture/texture.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

namespace dtexl {
namespace {

/** Deterministic xorshift64 for the randomized sweeps. */
struct Rng
{
    std::uint64_t s = 0x9e3779b97f4a7c15ull;
    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
    std::uint32_t u32() { return static_cast<std::uint32_t>(next()); }
    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        const float t = static_cast<float>(next() >> 40) /
                        static_cast<float>(1u << 24);
        return lo + (hi - lo) * t;
    }
};

/** Bit-pattern float equality: distinguishes -0.0, keeps NaN == NaN. */
::testing::AssertionResult
bitEqF(float a, float b)
{
    if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " (0x" << std::hex << std::bit_cast<std::uint32_t>(a)
           << ") vs " << b << " (0x" << std::bit_cast<std::uint32_t>(b)
           << ")";
}

// ---------------------------------------------------------------------
// Lane-primitive semantics
// ---------------------------------------------------------------------

/**
 * The layer's contract is scalar semantics per lane, which hardware
 * min/max and unordered compares would silently violate: std::max(a, b)
 * is (a < b) ? b : a, so max(NaN, x) == NaN but max(x, NaN) == x, and
 * max(+0, -0) keeps the first operand. Sweep the cases where maxps
 * differs from std::max.
 */
TEST(SimdLanes, MaxMinMatchStdSemantics)
{
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float inf = std::numeric_limits<float>::infinity();
    const float cases[][2] = {
        {nan, 1.0f},  {1.0f, nan},   {nan, nan},  {+0.0f, -0.0f},
        {-0.0f, +0.0f}, {1.0f, 2.0f}, {2.0f, 1.0f}, {-inf, inf},
        {inf, -inf},  {1e-41f, 0.0f}, {-1.0f, -1.0f},
    };
    for (const auto &c : cases) {
        const F32x4 a = splatF4(c[0]);
        const F32x4 b = splatF4(c[1]);
        float mx[4], mn[4];
        storeF4(mx, maxStdF4(a, b));
        storeF4(mn, minStdF4(a, b));
        for (int i = 0; i < 4; ++i) {
            EXPECT_TRUE(bitEqF(mx[i], std::max(c[0], c[1])))
                << "max(" << c[0] << ", " << c[1] << ")";
            EXPECT_TRUE(bitEqF(mn[i], std::min(c[0], c[1])))
                << "min(" << c[0] << ", " << c[1] << ")";
        }
    }
}

TEST(SimdLanes, ComparesAreOrdered)
{
    // NaN lanes must produce a false mask from every compare, matching
    // scalar <, > and == (all false on unordered operands).
    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float av[4] = {nan, 1.0f, nan, 0.0f};
    const float bv[4] = {1.0f, nan, nan, 0.0f};
    const F32x4 a = loadF4(av);
    const F32x4 b = loadF4(bv);
    EXPECT_EQ(moveMask4(cmpLtF4(a, b)), 0);
    EXPECT_EQ(moveMask4(cmpGtF4(a, b)), 0);
    EXPECT_EQ(moveMask4(cmpEqF4(a, b)), 0x8);  // only lane 3 (0 == 0)
}

TEST(SimdLanes, IntToFloatMatchesStaticCast)
{
    // Values above 2^24 round; the hardware cvt must round exactly
    // like static_cast<float> (to nearest even).
    const std::int32_t cases[] = {0,          1,          -1,
                                  (1 << 24),  (1 << 24) + 1,
                                  0x7fffffbf, 0x7fffffc0, -0x7fffffff,
                                  123456789,  -987654321};
    for (std::int32_t v : cases) {
        float out[4];
        storeF4(out, toF4(splatI4(v)));
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(bitEqF(out[i], static_cast<float>(v))) << v;
    }
}

TEST(SimdLanes, SqrtMatchesScalar)
{
    Rng rng;
    for (int iter = 0; iter < 1000; ++iter) {
        float in[4], out[4];
        for (int i = 0; i < 4; ++i)
            in[i] = rng.uniform(0.0f, 1e6f);
        in[0] = iter == 0 ? 1e-41f : in[0];  // subnormal operand
        storeF4(out, sqrtF4(loadF4(in)));
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(bitEqF(out[i], std::sqrt(in[i]))) << in[i];
    }
}

// ---------------------------------------------------------------------
// Morton / Hilbert lanes
// ---------------------------------------------------------------------

TEST(SimdSfc, MortonEncode4MatchesScalar)
{
    Rng rng;
    const std::uint32_t edge[] = {0u, 1u, 0xFFFFu, 0x10000u, 0x55555555u,
                                  0xAAAAAAAAu, 0xFFFFFFFFu};
    std::vector<std::uint32_t> xs(edge, edge + 7), ys(edge, edge + 7);
    for (int i = 0; i < 997; ++i) {
        xs.push_back(rng.u32());
        ys.push_back(rng.u32());
    }
    for (std::size_t i = 0; i + 4 <= xs.size(); i += 4) {
        const U32x4 x = makeU4(xs[i], xs[i + 1], xs[i + 2], xs[i + 3]);
        const U32x4 y = makeU4(ys[i], ys[i + 1], ys[i + 2], ys[i + 3]);
        std::uint64_t code[4];
        storeU64x4(code, mortonEncode4(x, y));
        for (int j = 0; j < 4; ++j)
            EXPECT_EQ(code[j], mortonEncode(xs[i + j], ys[i + j]))
                << "x=" << xs[i + j] << " y=" << ys[i + j];
    }
}

TEST(SimdSfc, MortonDecode4MatchesScalar)
{
    Rng rng;
    for (int i = 0; i < 256; ++i) {
        std::uint64_t codes[4];
        for (int j = 0; j < 4; ++j)
            codes[j] = rng.next();
        codes[0] = i == 0 ? 0 : codes[0];
        codes[1] = i == 0 ? ~0ull : codes[1];
        const U64x4 c = loadU64x4(codes);
        std::uint32_t x[4], y[4];
        storeU4(x, mortonDecodeX4(c));
        storeU4(y, mortonDecodeY4(c));
        for (int j = 0; j < 4; ++j) {
            EXPECT_EQ(x[j], mortonDecodeX(codes[j]));
            EXPECT_EQ(y[j], mortonDecodeY(codes[j]));
        }
    }
}

TEST(SimdSfc, HilbertD2XY4MatchesScalar)
{
    // Full sweep of the traversal's actual grid (8x8 sub-frames), then
    // a larger grid for depth coverage.
    for (std::uint32_t side : {2u, 8u, 64u, 256u}) {
        const std::uint32_t n = side * side;
        for (std::uint32_t d = 0; d + 4 <= n; d += 4) {
            const std::uint32_t ds[4] = {d, d + 1, d + 2, d + 3};
            std::uint32_t x4[4], y4[4];
            hilbertD2XY4(side, ds, x4, y4);
            for (int j = 0; j < 4; ++j) {
                std::uint32_t x, y;
                hilbertD2XY(side, ds[j], x, y);
                EXPECT_EQ(x4[j], x) << "side=" << side << " d=" << ds[j];
                EXPECT_EQ(y4[j], y) << "side=" << side << " d=" << ds[j];
            }
            if (side > 8 && d > 64)
                d += (side * side) / 64 & ~3u;  // sample large grids
        }
    }
}

TEST(SimdSfc, TileOrderIdenticalUnderBothModes)
{
    const struct
    {
        std::uint32_t x, y;
    } grids[] = {{1, 1}, {2, 3}, {8, 8}, {13, 7}, {61, 24}, {5, 1},
                 {1, 9}, {62, 24}};
    for (TileOrder o : kAllTileOrders) {
        for (const auto &g : grids) {
            const std::vector<TileId> lanes =
                makeTileOrder(o, g.x, g.y, SimdMode::Auto);
            const std::vector<TileId> scalar =
                makeTileOrder(o, g.x, g.y, SimdMode::Scalar);
            EXPECT_EQ(lanes, scalar)
                << toString(o) << " " << g.x << "x" << g.y;
        }
    }
}

// ---------------------------------------------------------------------
// Striped FNV checksum
// ---------------------------------------------------------------------

/**
 * Every tail length 0..3 and the chain crossover points against a
 * byte-at-a-time reference (h[i % 4] chains, folded with length):
 * the production unrolled loop must agree at every size.
 */
TEST(SimdHash, StripedFnvMatchesReferenceAtEverySize)
{
    Rng rng;
    std::vector<std::uint8_t> buf;
    auto reference = [](const std::vector<std::uint8_t> &b) {
        std::uint64_t h[4] = {
            Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis,
            Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis};
        for (std::size_t i = 0; i < b.size(); ++i)
            h[i % 4] = (h[i % 4] ^ b[i]) * Fnv1a64::kPrime;
        Fnv1a64 fold;
        for (std::uint64_t d : h)
            fold.u64(d);
        fold.u64(b.size());
        return fold.value();
    };
    for (std::size_t size = 0; size <= 130; ++size) {
        buf.resize(size);
        for (auto &b : buf)
            b = static_cast<std::uint8_t>(rng.next());
        EXPECT_EQ(fnv1a64Striped(buf), reference(buf))
            << "size=" << size;
    }
    buf.resize(65536);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(fnv1a64Striped(buf), reference(buf));
}

/**
 * The layer's 64-bit lane multiply must be exact mod 2^64 on every
 * backend — the AVX2 backend assembles it from 32x32->64 partial
 * products, which this cross-checks against scalar multiplication on
 * carry-heavy operands (FNV constants, all-ones, high bits set).
 */
TEST(SimdHash, MulU64x4MatchesScalar)
{
    Rng rng;
    const std::uint64_t specials[] = {
        0,
        1,
        Fnv1a64::kPrime,
        Fnv1a64::kOffsetBasis,
        0xFFFFFFFFull,
        0x100000000ull,
        ~0ull,
        0x8000000000000000ull,
    };
    std::vector<std::uint64_t> vals(specials, std::end(specials));
    for (int i = 0; i < 64; ++i)
        vals.push_back(rng.next());
    for (std::size_t i = 0; i + 4 <= vals.size(); ++i) {
        for (std::size_t j = 0; j + 4 <= vals.size(); j += 4) {
            const U64x4 a = makeU64x4(vals[i], vals[i + 1], vals[i + 2],
                                      vals[i + 3]);
            const U64x4 b = makeU64x4(vals[j], vals[j + 1], vals[j + 2],
                                      vals[j + 3]);
            std::uint64_t got[4];
            storeU64x4(got, mulU64x4(a, b));
            for (int k = 0; k < 4; ++k) {
                EXPECT_EQ(got[k], vals[i + k] * vals[j + k])
                    << "i=" << i << " j=" << j << " lane " << k;
            }
        }
    }
}

/**
 * Freeze the v2 artifact-checksum format with an implementation the
 * production code never touches: four byte-interleaved FNV-1a chains,
 * folded with plain FNV-1a over the four digests and the length. A
 * change to either side is a silent format break result_store and
 * checkpoint files would trip over.
 */
TEST(SimdHash, StripedFnvFormatIsFrozen)
{
    Rng rng;
    std::vector<std::uint8_t> buf(1037);
    for (auto &b : buf)
        b = static_cast<std::uint8_t>(rng.next());

    std::uint64_t h[4] = {Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis,
                          Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis};
    for (std::size_t i = 0; i < buf.size(); ++i)
        h[i % 4] = (h[i % 4] ^ buf[i]) * Fnv1a64::kPrime;
    Fnv1a64 fold;
    fold.u64(h[0]);
    fold.u64(h[1]);
    fold.u64(h[2]);
    fold.u64(h[3]);
    fold.u64(buf.size());

    EXPECT_EQ(fnv1a64Striped(buf), fold.value());
    // Not interchangeable with the serial digest (a mixed-up call site
    // must fail checksum verification, not silently pass).
    EXPECT_NE(fnv1a64Striped(buf), fnv1a64(buf));
}

// ---------------------------------------------------------------------
// Batched LOD (QuadStream::lod4)
// ---------------------------------------------------------------------

TEST(SimdLod, LodBatchMatchesScalar)
{
    static const Primitive prim;  // lod() never dereferences it
    QuadStream qs;
    Rng rng;

    auto pushQuad = [&](Vec2f f0, Vec2f f1, Vec2f f2, Vec2f f3) {
        std::array<Fragment, 4> frags;
        frags[0].uv = f0;
        frags[1].uv = f1;
        frags[2].uv = f2;
        frags[3].uv = f3;
        qs.push(&prim, Coord2{0, 0}, 0xF, frags);
    };

    const float nan = std::numeric_limits<float>::quiet_NaN();
    const float sub = 1e-41f;  // subnormal uv derivative
    // Edge cases first: rho exactly 1.0 (side 64, dudx exactly 1/64 —
    // sqrt of an exact square — must take the lod == 0 branch in both
    // implementations), a degenerate zero-derivative quad, subnormal
    // derivatives, a NaN quad, huge derivatives.
    pushQuad({0, 0}, {1.0f / 64.0f, 0}, {0, 1.0f / 64.0f},
             {1.0f / 64.0f, 1.0f / 64.0f});
    pushQuad({0.25f, 0.5f}, {0.25f, 0.5f}, {0.25f, 0.5f},
             {0.25f, 0.5f});
    pushQuad({0, 0}, {sub, 0}, {0, sub}, {sub, sub});
    pushQuad({nan, 0}, {0, nan}, {1, 1}, {0, 0});
    pushQuad({0, 0}, {500.0f, 0}, {0, 500.0f}, {500.0f, 500.0f});
    // Just above/below the rho == 1 threshold.
    pushQuad({0, 0}, {std::nextafter(1.0f / 64.0f, 1.0f), 0}, {0, 0},
             {0, 0});
    pushQuad({0, 0}, {std::nextafter(1.0f / 64.0f, 0.0f), 0}, {0, 0},
             {0, 0});
    while (qs.size() < 64) {
        Vec2f f[4];
        for (auto &v : f)
            v = Vec2f{rng.uniform(-4.0f, 4.0f), rng.uniform(-4.0f, 4.0f)};
        pushQuad(f[0], f[1], f[2], f[3]);
    }

    const std::uint32_t sides[] = {64, 128, 256, 1024};
    for (std::uint32_t i = 0; i + 4 <= qs.size(); i += 4) {
        std::uint32_t idx[4], side[4];
        for (int j = 0; j < 4; ++j) {
            idx[j] = i + static_cast<std::uint32_t>(j);
            side[j] = sides[(i + j) % 4];
        }
        float out[4];
        qs.lod4(idx, side, out);
        for (int j = 0; j < 4; ++j)
            EXPECT_TRUE(bitEqF(out[j], qs.lod(idx[j], side[j])))
                << "quad " << idx[j] << " side " << side[j];
    }
}

// ---------------------------------------------------------------------
// Batched texel footprints (quadSampleFootprints)
// ---------------------------------------------------------------------

void
expectSameFootprints(const TextureDesc &tex, FilterMode mode,
                     const Vec2f uv[4], float lod)
{
    SampleFootprint fp[4];
    quadSampleFootprints(tex, mode, uv, lod, fp);
    for (int k = 0; k < 4; ++k) {
        const SampleFootprint ref =
            sampleFootprint(tex, mode, uv[k].x, uv[k].y, lod);
        ASSERT_EQ(fp[k].count, ref.count)
            << "fmt=" << toString(tex.format())
            << " mode=" << static_cast<int>(mode) << " frag=" << k
            << " uv=(" << uv[k].x << "," << uv[k].y << ") lod=" << lod;
        for (std::uint32_t t = 0; t < ref.count; ++t)
            EXPECT_EQ(fp[k].texels[t], ref.texels[t])
                << "fmt=" << toString(tex.format()) << " frag=" << k
                << " tap=" << t;
    }
}

TEST(SimdFootprint, QuadFootprintsMatchScalar)
{
    const TextureDesc textures[] = {
        TextureDesc(0, 0, 64, TexFormat::RGBA8),
        TextureDesc(1, 1 << 20, 32, TexFormat::RGB565),
        TextureDesc(2, 1 << 21, 64, TexFormat::ETC2),
        TextureDesc(3, 1 << 22, 1, TexFormat::RGBA8),  // 1x1 edge case
    };
    const FilterMode modes[] = {FilterMode::Nearest, FilterMode::Bilinear,
                                FilterMode::Trilinear,
                                FilterMode::Aniso2x};
    // LODs: base level, fractional, exact level boundary, beyond the
    // chain (clamped), and the last level.
    const float lods[] = {0.0f, 0.37f, 1.0f, 2.6f, 100.0f};

    // Wrap-boundary straddling quads: taps around u=0 and u=1 must
    // wrap to the far column identically in both implementations, as
    // must coordinates far outside [0, 1).
    const Vec2f straddles[][4] = {
        {{-0.001f, 0.5f}, {0.001f, 0.5f}, {-0.001f, 0.52f},
         {0.001f, 0.52f}},
        {{0.999f, 0.0f}, {1.001f, 0.0f}, {0.999f, -0.01f},
         {1.001f, 0.996f}},
        {{0.0f, 0.0f}, {1.0f, 1.0f}, {-1.0f, 2.0f}, {0.5f, -2.5f}},
        // Exactly on texel centres and corners (side 64: centres at
        // k/64 + 1/128) — the floor(x - 0.5) boundary.
        {{0.5f, 0.5f}, {0.5f + 1.0f / 128.0f, 0.5f},
         {0.25f, 0.5f + 1.0f / 128.0f}, {31.0f / 64.0f, 33.0f / 64.0f}},
    };

    Rng rng;
    for (const TextureDesc &tex : textures) {
        for (FilterMode mode : modes) {
            for (float lod : lods) {
                for (const auto &uv : straddles)
                    expectSameFootprints(tex, mode, uv, lod);
                for (int iter = 0; iter < 25; ++iter) {
                    Vec2f uv[4];
                    for (auto &p : uv)
                        p = Vec2f{rng.uniform(-2.0f, 3.0f),
                                  rng.uniform(-2.0f, 3.0f)};
                    expectSameFootprints(tex, mode, uv, lod);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Vectorized rasterizer
// ---------------------------------------------------------------------

Primitive
makeTri(Rng &rng, float lo, float hi)
{
    Primitive p;
    for (int i = 0; i < 3; ++i) {
        p.v[i].screen =
            Vec2f{rng.uniform(lo, hi), rng.uniform(lo, hi)};
        p.v[i].depth = rng.uniform(0.0f, 1.0f);
        p.v[i].uv = Vec2f{rng.uniform(-1.0f, 2.0f),
                          rng.uniform(-1.0f, 2.0f)};
    }
    return p;
}

void
expectSameQuads(const std::vector<Quad> &a, const std::vector<Quad> &b,
                int iter)
{
    ASSERT_EQ(a.size(), b.size()) << "iter " << iter;
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("iter " + std::to_string(iter) + " quad " +
                     std::to_string(i));
        EXPECT_EQ(a[i].prim, b[i].prim);
        EXPECT_EQ(a[i].quadInTile.x, b[i].quadInTile.x);
        EXPECT_EQ(a[i].quadInTile.y, b[i].quadInTile.y);
        EXPECT_EQ(a[i].coverage, b[i].coverage);
        for (int k = 0; k < 4; ++k) {
            EXPECT_TRUE(
                bitEqF(a[i].frags[k].depth, b[i].frags[k].depth));
            EXPECT_TRUE(bitEqF(a[i].frags[k].uv.x, b[i].frags[k].uv.x));
            EXPECT_TRUE(bitEqF(a[i].frags[k].uv.y, b[i].frags[k].uv.y));
        }
    }
}

TEST(SimdRaster, RasterizerMatchesScalar)
{
    GpuConfig lanes_cfg;
    lanes_cfg.screenWidth = 64;
    lanes_cfg.screenHeight = 48;
    lanes_cfg.simdMode = SimdMode::Auto;
    GpuConfig scalar_cfg = lanes_cfg;
    scalar_cfg.simdMode = SimdMode::Scalar;
    const Rasterizer lanes(lanes_cfg);
    const Rasterizer scalar(scalar_cfg);

    Rng rng;
    const Coord2 tiles[] = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
    for (int iter = 0; iter < 400; ++iter) {
        // Mix of big overlapping triangles, slivers that barely touch
        // pixel centres, and off-screen spans (the on_screen clamp).
        Primitive p = iter % 3 == 0 ? makeTri(rng, -16.0f, 80.0f)
                                    : makeTri(rng, 0.0f, 64.0f);
        if (iter % 5 == 0) {
            // Sliver: collapse towards an edge.
            p.v[2].screen = Vec2f{
                p.v[0].screen.x +
                    0.9f * (p.v[1].screen.x - p.v[0].screen.x) + 0.01f,
                p.v[0].screen.y +
                    0.9f * (p.v[1].screen.y - p.v[0].screen.y)};
        }
        if (iter % 7 == 0) {
            // Vertices on pixel centres: edge functions hit exactly
            // zero and the top-left rule decides coverage.
            for (int i = 0; i < 3; ++i)
                p.v[i].screen = Vec2f{
                    std::floor(p.v[i].screen.x) + 0.5f,
                    std::floor(p.v[i].screen.y) + 0.5f};
        }
        for (const Coord2 &tc : tiles) {
            std::vector<Quad> qa, qb;
            const std::size_t na = lanes.rasterize(p, tc, qa);
            const std::size_t nb = scalar.rasterize(p, tc, qb);
            EXPECT_EQ(na, nb);
            expectSameQuads(qa, qb, iter);
        }
    }

    // Degenerate triangles: zero area (repeated vertex, collinear).
    Primitive degen = makeTri(rng, 0.0f, 64.0f);
    degen.v[1] = degen.v[0];
    std::vector<Quad> qa, qb;
    EXPECT_EQ(lanes.rasterize(degen, {0, 0}, qa), 0u);
    EXPECT_EQ(scalar.rasterize(degen, {0, 0}, qb), 0u);
    Primitive collinear = makeTri(rng, 0.0f, 64.0f);
    collinear.v[1].screen = Vec2f{collinear.v[0].screen.x + 8.0f,
                                  collinear.v[0].screen.y + 4.0f};
    collinear.v[2].screen = Vec2f{collinear.v[0].screen.x + 16.0f,
                                  collinear.v[0].screen.y + 8.0f};
    EXPECT_EQ(lanes.rasterize(collinear, {0, 0}, qa), 0u);
    EXPECT_EQ(scalar.rasterize(collinear, {0, 0}, qb), 0u);
}

// ---------------------------------------------------------------------
// pow2 texture-side guard (the wrap mask's precondition)
// ---------------------------------------------------------------------

TEST(SimdGuards, TextureRejectsNonPow2Side)
{
    for (std::uint32_t side : {0u, 3u, 48u, 100u, 65u}) {
        try {
            TextureDesc t(7, 0, side);
            FAIL() << "side " << side << " accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.kind(), ErrorKind::UserInput) << e.describe();
            EXPECT_NE(e.describe().find("power of two"),
                      std::string::npos)
                << e.describe();
        }
    }
    // Powers of two stay accepted, including the trivial 1x1.
    EXPECT_NO_THROW(TextureDesc(8, 0, 1));
    EXPECT_NO_THROW(TextureDesc(9, 0, 1024));
}

TEST(SimdGuards, SceneLoaderRejectsNonPow2Side)
{
    std::stringstream ss("DTEXL_SCENE v1\n"
                         "textures 1\n"
                         "  0 4096 48 RGBA8\n"
                         "draws 0\n");
    try {
        loadScene(ss, "test.dscene");
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), ErrorKind::UserInput) << e.describe();
        EXPECT_NE(e.describe().find("power of two"), std::string::npos)
            << e.describe();
        EXPECT_EQ(e.context().rfind("test.dscene:3", 0), 0u)
            << e.context();
    }
}

// ---------------------------------------------------------------------
// --simd plumbing
// ---------------------------------------------------------------------

TEST(SimdPlumbing, CliAndConfigKeys)
{
    CommonCliOptions opts;
    EXPECT_EQ(opts.simdMode, CommonCliOptions::kSimdUnset);
    EXPECT_TRUE(opts.tryParse("--simd=scalar"));
    EXPECT_EQ(opts.simdMode,
              static_cast<std::uint32_t>(SimdMode::Scalar));
    EXPECT_TRUE(opts.tryParse("--simd=auto"));
    EXPECT_EQ(opts.simdMode, static_cast<std::uint32_t>(SimdMode::Auto));
    EXPECT_FALSE(opts.tryParse("--not-a-flag"));

    GpuConfig cfg;
    applyConfigOption(cfg, "simd", "scalar");
    EXPECT_EQ(cfg.simdMode, SimdMode::Scalar);
    applyConfigOption(cfg, "simd", "auto");
    EXPECT_EQ(cfg.simdMode, SimdMode::Auto);

    EXPECT_EQ(toString(SimdMode::Auto), "auto");
    EXPECT_EQ(toString(SimdMode::Scalar), "scalar");
    EXPECT_EQ(simdModeFromString("auto"), SimdMode::Auto);
    EXPECT_EQ(simdModeFromString("scalar"), SimdMode::Scalar);
}

// ---------------------------------------------------------------------
// Whole-frame equivalence
// ---------------------------------------------------------------------

GpuConfig
smallCfg()
{
    GpuConfig cfg;
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    return cfg;
}

/** Every FrameStats field, including the image hash. */
void
expectSameStats(const FrameStats &a, const FrameStats &b,
                const std::string &what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(a.geometryCycles, b.geometryCycles);
    EXPECT_EQ(a.rasterCycles, b.rasterCycles);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.fps, b.fps);
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.primitivesBinned, b.primitivesBinned);
    EXPECT_EQ(a.quadsRasterized, b.quadsRasterized);
    EXPECT_EQ(a.quadsCulledEarlyZ, b.quadsCulledEarlyZ);
    EXPECT_EQ(a.quadsCulledHiZ, b.quadsCulledHiZ);
    EXPECT_EQ(a.quadsShaded, b.quadsShaded);
    EXPECT_EQ(a.fragmentsShaded, b.fragmentsShaded);
    EXPECT_EQ(a.shaderInstructions, b.shaderInstructions);
    EXPECT_EQ(a.textureSamples, b.textureSamples);
    EXPECT_EQ(a.earlyZTests, b.earlyZTests);
    EXPECT_EQ(a.blendOps, b.blendOps);
    EXPECT_EQ(a.flushLineWrites, b.flushLineWrites);
    EXPECT_EQ(a.flushesEliminated, b.flushesEliminated);
    EXPECT_EQ(a.l1TexAccesses, b.l1TexAccesses);
    EXPECT_EQ(a.l1TexMisses, b.l1TexMisses);
    EXPECT_EQ(a.l1VertexAccesses, b.l1VertexAccesses);
    EXPECT_EQ(a.l1TileAccesses, b.l1TileAccesses);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.quadsPerSc, b.quadsPerSc);
    EXPECT_EQ(a.barrierIdleCycles, b.barrierIdleCycles);
    EXPECT_EQ(a.tileTimeDeviation.samples(),
              b.tileTimeDeviation.samples());
    EXPECT_EQ(a.tileQuadDeviation.samples(),
              b.tileQuadDeviation.samples());
    EXPECT_DOUBLE_EQ(a.textureReplication, b.textureReplication);
    EXPECT_EQ(a.imageHash, b.imageHash);
}

/**
 * Render 3 animated frames of @p alias with --simd=auto and
 * --simd=scalar; every frame must be bit-exact (same contract as
 * tests/test_fastpath_equiv.cc, over the SIMD knob instead).
 */
void
autoMatchesScalar(GpuConfig cfg, const std::string &alias)
{
    cfg.simdMode = SimdMode::Auto;
    GpuConfig scalar_cfg = cfg;
    scalar_cfg.simdMode = SimdMode::Scalar;

    const BenchmarkParams &p = benchmarkByAlias(alias);
    const Scene f0 = generateScene(p, cfg, 0);
    const Scene f1 = generateScene(p, cfg, 1);
    const Scene f2 = generateScene(p, cfg, 2);

    GpuSimulator lanes(cfg, f0);
    GpuSimulator scalar(scalar_cfg, f0);

    const Scene *frames[] = {&f0, &f1, &f2};
    for (int f = 0; f < 3; ++f) {
        lanes.setScene(*frames[f]);
        scalar.setScene(*frames[f]);
        const FrameStats a = lanes.renderFrame();
        const FrameStats b = scalar.renderFrame();
        expectSameStats(a, b, alias + " frame " + std::to_string(f));
    }
}

TEST(SimdEquiv, Baseline)
{
    autoMatchesScalar(smallCfg(), "SWa");
}

TEST(SimdEquiv, DTexLPreset)
{
    // RectHilbert tile order, CG grouping, decoupled barriers: covers
    // the lane Hilbert traversal in a full frame.
    GpuConfig cfg = makeDTexLConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    autoMatchesScalar(cfg, "GTr");
}

TEST(SimdEquiv, UpperBoundPreset)
{
    GpuConfig cfg = makeUpperBoundConfig();
    cfg.screenWidth = 256;
    cfg.screenHeight = 128;
    autoMatchesScalar(cfg, "SoD");
}

TEST(SimdEquiv, ReferenceSimulatorPath)
{
    // The SIMD knob must be independent of the simFastPath knob: the
    // reference simulator path runs the same lane kernels.
    GpuConfig cfg = smallCfg();
    cfg.simFastPath = false;
    autoMatchesScalar(cfg, "CCS");
}

TEST(SimdEquiv, ThreadedFrontAndBackEnd)
{
    // Lane kernels run inside geometry workers and raster domains; the
    // equivalence must survive both thread shapes at once.
    GpuConfig cfg = smallCfg();
    cfg.geomThreads = 2;
    cfg.rasterThreads = 2;
    autoMatchesScalar(cfg, "Mze");
}

TEST(SimdEquiv, StatRegistryBitExact)
{
    GpuConfig cfg = smallCfg();
    cfg.simdMode = SimdMode::Auto;
    GpuConfig scalar_cfg = cfg;
    scalar_cfg.simdMode = SimdMode::Scalar;
    const Scene scene = generateScene(benchmarkByAlias("SoD"), cfg, 0);

    StatRegistry lanes_reg("lanes"), scalar_reg("scalar");
    GpuSimulator lanes(cfg, scene);
    GpuSimulator scalar(scalar_cfg, scene);
    lanes.setStatRegistry(&lanes_reg, "engine");
    scalar.setStatRegistry(&scalar_reg, "engine");
    (void)lanes.renderFrame();
    (void)scalar.renderFrame();

    ASSERT_EQ(lanes_reg.paths(), scalar_reg.paths());
    for (const std::string &path : lanes_reg.paths()) {
        const auto &a = lanes_reg.node(path).counters();
        const auto &b = scalar_reg.node(path).counters();
        ASSERT_EQ(a.size(), b.size()) << path;
        for (const auto &[key, value] : a) {
            if (key == "wall_us")
                continue;
            EXPECT_EQ(value, b.at(key)) << path << "." << key;
        }
    }
}

} // namespace
} // namespace dtexl

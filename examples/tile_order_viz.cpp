/**
 * @file
 * ASCII visualisation of the paper's figures 6-8: quad groupings over
 * one tile, tile traversal orders over the frame grid, and the
 * SC-assignment patterns the flip schemes produce — handy for seeing
 * what each policy actually does.
 *
 * Usage: tile_order_viz
 */

#include <cstdio>

#include "core/dtexl.hh"

using namespace dtexl;

namespace {

void
showGrouping(QuadGrouping g)
{
    SubtileLayout layout(g, 16);
    std::printf("%s:\n", toString(g).c_str());
    for (std::int32_t y = 0; y < 16; ++y) {
        std::printf("  ");
        for (std::int32_t x = 0; x < 16; ++x)
            std::printf("%c", '0' + layout.subtileOf({x, y}));
        std::printf("\n");
    }
    std::printf("\n");
}

void
showOrder(TileOrder o, std::uint32_t tx, std::uint32_t ty)
{
    const auto trav = makeTileOrder(o, tx, ty);
    std::vector<int> seq(trav.size());
    for (std::size_t i = 0; i < trav.size(); ++i)
        seq[trav[i]] = static_cast<int>(i);
    std::printf("%s (%ux%u), adjacency %.2f:\n", toString(o).c_str(),
                tx, ty, adjacencyFraction(trav, tx));
    for (std::uint32_t y = 0; y < ty; ++y) {
        std::printf("  ");
        for (std::uint32_t x = 0; x < tx; ++x)
            std::printf("%4d", seq[y * tx + x]);
        std::printf("\n");
    }
    std::printf("\n");
}

void
showAssignment(TileOrder o, SubtileAssignment a, std::uint32_t tx,
               std::uint32_t ty)
{
    SubtileLayout layout(QuadGrouping::CGSquare, 16);
    SubtileAssigner assigner(a, layout);
    const auto trav = makeTileOrder(o, tx, ty);

    // For each tile: which SC owns each quadrant (2x2 block of chars).
    std::vector<std::array<CoreId, 4>> perms(trav.size());
    for (TileId t : trav)
        perms[t] = assigner.next(tileCoord(t, tx));

    std::printf("%s + %s assignment (SC of TL/TR/BL/BR quadrant):\n",
                toString(o).c_str(), toString(a).c_str());
    for (std::uint32_t y = 0; y < ty; ++y) {
        for (int row = 0; row < 2; ++row) {
            std::printf("  ");
            for (std::uint32_t x = 0; x < tx; ++x) {
                const auto &p = perms[y * tx + x];
                std::printf("%c%c ", '0' + p[row * 2],
                            '0' + p[row * 2 + 1]);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
}

} // namespace

int
exampleMain()
{
    std::printf("==== Figure 6: quad groupings (one 32x32 tile, "
                "16x16 quads) ====\n\n");
    for (QuadGrouping g :
         {QuadGrouping::FGChecker, QuadGrouping::FGXShift2,
          QuadGrouping::CGSquare, QuadGrouping::CGYRect,
          QuadGrouping::CGTriangle}) {
        showGrouping(g);
    }

    std::printf("==== Figure 7: tile orders (visit sequence) ====\n\n");
    showOrder(TileOrder::ZOrder, 8, 8);
    showOrder(TileOrder::RectHilbert, 8, 8);
    showOrder(TileOrder::SOrder, 8, 4);
    showOrder(TileOrder::RectHilbert, 12, 6);

    std::printf("==== Figure 8: subtile assignments ====\n\n");
    showAssignment(TileOrder::RectHilbert, SubtileAssignment::Constant,
                   4, 4);
    showAssignment(TileOrder::RectHilbert, SubtileAssignment::Flip1, 4,
                   4);
    showAssignment(TileOrder::RectHilbert, SubtileAssignment::Flip2, 4,
                   4);
    return 0;
}

int
main()
{
    return dtexl::runGuardedMain([&] { return exampleMain(); });
}

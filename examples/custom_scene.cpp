/**
 * @file
 * Building a scene by hand against the public API: a textured ground
 * plane, a wall of bricks with overdraw, and a transparent particle
 * layer — then rendering it on the baseline and DTexL machines and
 * verifying both produce the identical image.
 *
 * Usage: custom_scene
 */

#include <cstdio>

#include "core/dtexl.hh"
#include "mem/address_map.hh"
#include "power/energy_model.hh"

using namespace dtexl;

namespace {

/** Track vertex buffer allocation across draws. */
Addr next_vb = addr_map::kVertexBase;

Vertex
vert(const GpuConfig &cfg, float px, float py, float depth, float u,
     float v)
{
    Vertex out;
    out.pos.x = px / (static_cast<float>(cfg.screenWidth) * 0.5f) - 1.0f;
    out.pos.y =
        py / (static_cast<float>(cfg.screenHeight) * 0.5f) - 1.0f;
    out.pos.z = depth * 2.0f - 1.0f;
    out.uv = {u, v};
    return out;
}

DrawCommand
rect(const GpuConfig &cfg, float x0, float y0, float x1, float y1,
     float depth, TextureId tex, float uv_scale, const ShaderDesc &sh)
{
    DrawCommand d;
    d.texture = tex;
    d.shader = sh;
    d.vertices = {
        vert(cfg, x0, y0, depth, x0 * uv_scale, y0 * uv_scale),
        vert(cfg, x1, y0, depth, x1 * uv_scale, y0 * uv_scale),
        vert(cfg, x0, y1, depth, x0 * uv_scale, y1 * uv_scale),
        vert(cfg, x1, y1, depth, x1 * uv_scale, y1 * uv_scale),
    };
    d.indices = {0, 1, 2, 2, 1, 3};
    d.vertexBufferAddr = next_vb;
    next_vb += d.vertices.size() * kVertexFetchBytes;
    return d;
}

} // namespace

int
exampleMain()
{
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = 640;
    cfg.screenHeight = 320;

    Scene scene;
    // Three textures: ground atlas, brick, particle sprite.
    Addr tex_addr = addr_map::kTextureBase;
    for (std::uint32_t side : {1024u, 256u, 128u}) {
        scene.textures.emplace_back(
            static_cast<TextureId>(scene.textures.size()), tex_addr,
            side);
        tex_addr += scene.textures.back().totalBytes();
    }

    ShaderDesc ground_shader;
    ground_shader.aluOps = 6;
    ground_shader.texSamples = 1;
    ground_shader.filter = FilterMode::Aniso2x;  // receding plane

    ShaderDesc brick_shader;
    brick_shader.aluOps = 10;
    brick_shader.texSamples = 2;  // albedo + normal map
    brick_shader.filter = FilterMode::Trilinear;

    ShaderDesc particle_shader;
    particle_shader.aluOps = 4;
    particle_shader.texSamples = 1;
    particle_shader.blends = true;

    const float w = static_cast<float>(cfg.screenWidth);
    const float h = static_cast<float>(cfg.screenHeight);

    // Ground plane across the lower half.
    scene.draws.push_back(
        rect(cfg, 0, h * 0.5f, w, h, 0.9f, 0, 1.0f / 1024.0f,
             ground_shader));
    // Sky.
    scene.draws.push_back(
        rect(cfg, 0, 0, w, h * 0.5f, 0.95f, 0, 0.5f / 1024.0f,
             ground_shader));
    // Brick wall: rows of bricks, nearer rows drawn later (painter
    // violations resolved by the Z test).
    for (int row = 0; row < 4; ++row) {
        for (int col = 0; col < 8; ++col) {
            const float bx = static_cast<float>(col) * 80.0f;
            const float by = 60.0f + static_cast<float>(row) * 40.0f;
            scene.draws.push_back(
                rect(cfg, bx, by, bx + 78.0f, by + 38.0f,
                     0.5f - 0.05f * static_cast<float>(row), 1,
                     1.0f / 128.0f, brick_shader));
        }
    }
    // Transparent particles on top.
    for (int i = 0; i < 24; ++i) {
        const float px = static_cast<float>((i * 97) % 600);
        const float py = static_cast<float>((i * 53) % 280);
        scene.draws.push_back(rect(cfg, px, py, px + 24.0f, py + 24.0f,
                                   0.2f, 2, 1.0f / 32.0f,
                                   particle_shader));
    }

    std::printf("Scene: %zu draws, %zu textures (%.2f MiB)\n\n",
                scene.draws.size(), scene.textures.size(),
                static_cast<double>(scene.textureFootprintBytes()) /
                    (1024.0 * 1024.0));

    GpuConfig dtexl_cfg = makeDTexLConfig();
    dtexl_cfg.screenWidth = cfg.screenWidth;
    dtexl_cfg.screenHeight = cfg.screenHeight;

    GpuSimulator base_gpu(cfg, scene);
    GpuSimulator dtexl_gpu(dtexl_cfg, scene);
    const FrameStats a = base_gpu.renderFrame();
    const FrameStats b = dtexl_gpu.renderFrame();

    EnergyModel energy;
    std::printf("baseline: %llu cycles (%.0f fps), %llu L2 accesses, "
                "%.1f uJ\n",
                static_cast<unsigned long long>(a.totalCycles), a.fps,
                static_cast<unsigned long long>(a.l2Accesses),
                energy.compute(cfg, a).total() * 1e6);
    std::printf("DTexL   : %llu cycles (%.0f fps), %llu L2 accesses, "
                "%.1f uJ\n",
                static_cast<unsigned long long>(b.totalCycles), b.fps,
                static_cast<unsigned long long>(b.l2Accesses),
                energy.compute(dtexl_cfg, b).total() * 1e6);
    std::printf("images identical: %s\n",
                a.imageHash == b.imageHash ? "yes" : "NO (bug!)");
    return a.imageHash == b.imageHash ? 0 : 1;
}

int
main()
{
    return dtexl::runGuardedMain([&] { return exampleMain(); });
}

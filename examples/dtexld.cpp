/**
 * @file
 * dtexld — the persistent simulation-service daemon (src/serve/).
 * Listens on a Unix-domain socket for line-framed JSON commands
 * (submit/status/cancel/gc/drain/shutdown/subscribe), runs jobs on a
 * bounded worker pool with per-job deadlines, retry-with-backoff for
 * transient failures, checkpoint resume, and graceful SIGTERM drain.
 * scripts/dtexl_client.py is the reference client.
 *
 * Usage:
 *   dtexld [--state-dir=DIR] [--socket=PATH] [--workers=N]
 *          [--queue-depth=N] [--deadline-ms=N] [--retry-max=N]
 *          [--retry-base-ms=N] [--retry-after-ms=N]
 *          [--preset=baseline|dtexl] [key=value ...]
 *          plus the shared flags (--cache-dir, --events, ...)
 *
 * Defaults favour the robustness features: unless overridden, the
 * state directory hosts the socket (dtexld.sock), the crash-recovery
 * journal (jobs.journal), a rotated event ledger (events.jsonl, the
 * previous run's moved to events.jsonl.1), and a read-write result
 * cache with per-frame checkpoints + resume — so an interrupted or
 * retried job continues from its last completed frame out of the box.
 *
 * key=value options (and --preset) set the BASE config jobs inherit;
 * a submit's own preset/options are applied on top per job.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/dtexl.hh"
#include "obs/event_bus.hh"
#include "serve/daemon.hh"
#include "telemetry/cli_options.hh"

using namespace dtexl;

namespace {

const char *kUsage =
    "usage: dtexld [--state-dir=DIR] [--socket=PATH] [--workers=N] "
    "[--queue-depth=N] [--deadline-ms=N] [--retry-max=N] "
    "[--retry-base-ms=N] [--retry-after-ms=N] "
    "[--preset=baseline|dtexl] [key=value ...] plus the shared flags "
    "(see --help)";

long
parseCount(const std::string &arg, const char *flag, long lo, long hi)
{
    const std::string value = arg.substr(std::strlen(flag));
    char *end = nullptr;
    const long n = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || n < lo || n > hi)
        fatal("%s must be a number in [%ld, %ld], got '%s'", flag, lo,
              hi, value.c_str());
    return n;
}

int
dtexldMain(int argc, char **argv)
{
    CommonCliOptions common;
    CommonCliOptions::noteInvocation(argc, argv);

    DaemonConfig dc;
    dc.stateDir = "dtexld-state";
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = 640;
    cfg.screenHeight = 288;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (common.tryParse(arg)) {
            // Shared flag.
        } else if (arg.rfind("--state-dir=", 0) == 0) {
            dc.stateDir = arg.substr(12);
            if (dc.stateDir.empty())
                fatal("--state-dir needs a directory path");
        } else if (arg.rfind("--socket=", 0) == 0) {
            dc.socketPath = arg.substr(9);
        } else if (arg.rfind("--workers=", 0) == 0) {
            dc.workers = static_cast<unsigned>(
                parseCount(arg, "--workers=", 1, 64));
        } else if (arg.rfind("--queue-depth=", 0) == 0) {
            dc.queueDepth = static_cast<std::size_t>(
                parseCount(arg, "--queue-depth=", 1, 4096));
        } else if (arg.rfind("--deadline-ms=", 0) == 0) {
            dc.defaultDeadlineMs = static_cast<double>(
                parseCount(arg, "--deadline-ms=", 0, 86400000));
        } else if (arg.rfind("--retry-max=", 0) == 0) {
            dc.retryMax = static_cast<std::uint32_t>(
                parseCount(arg, "--retry-max=", 1, 100));
        } else if (arg.rfind("--retry-base-ms=", 0) == 0) {
            dc.backoff.baseDelayMs = static_cast<std::uint32_t>(
                parseCount(arg, "--retry-base-ms=", 1, 600000));
        } else if (arg.rfind("--retry-after-ms=", 0) == 0) {
            dc.retryAfterMs = static_cast<std::uint32_t>(
                parseCount(arg, "--retry-after-ms=", 0, 600000));
        } else if (arg == "--preset=dtexl") {
            const std::uint32_t w = cfg.screenWidth;
            const std::uint32_t h = cfg.screenHeight;
            cfg = makeDTexLConfig();
            cfg.screenWidth = w;
            cfg.screenHeight = h;
        } else if (arg == "--preset=baseline") {
            // default
        } else if (arg == "--help" || arg == "-h") {
            std::printf("%s\n\nshared flags:\n%s", kUsage,
                        CommonCliOptions::helpText());
            return 0;
        } else if (arg.find('=') != std::string::npos &&
                   arg.rfind("--", 0) != 0) {
            const std::size_t eq = arg.find('=');
            applyConfigOption(cfg, arg.substr(0, eq),
                              arg.substr(eq + 1));
        } else {
            CommonCliOptions::rejectUnknown(arg, kUsage);
        }
    }

    std::error_code ec;
    std::filesystem::create_directories(dc.stateDir, ec);
    if (ec)
        throwIoError("cannot create state dir '%s': %s",
                     dc.stateDir.c_str(), ec.message().c_str());

    if (dc.socketPath.empty())
        dc.socketPath = dc.stateDir + "/dtexld.sock";

    // Checkpoint-resume by default: a retried or drained job should
    // continue, not recompute. Explicit cache flags win.
    if (common.cacheDir.empty()) {
        common.cacheDir = dc.stateDir + "/cache";
        common.cacheMode = CacheMode::ReadWrite;
        if (common.checkpointEvery == 0)
            common.checkpointEvery = 1;
        common.resumeFlag = true;
    }

    // Event ledger, rotated: the previous daemon's ledger survives as
    // events.jsonl.1 (EventBus::enable truncates), so a restart after
    // SIGTERM keeps both halves of the story auditable.
    if (!EventBus::armed()) {
        const std::string ledger = dc.stateDir + "/events.jsonl";
        std::rename(ledger.c_str(), (ledger + ".1").c_str());
        EventBus::global().enable(ledger);
    }

    // Arms the cache and emits run_start with the base config digest.
    common.applyThreadKnobs(cfg);
    cfg.validate();
    dc.baseCfg = cfg;

    Daemon daemon(std::move(dc));
    return daemon.run();
}

} // namespace

int
main(int argc, char **argv)
{
    return runGuardedMain([&] { return dtexldMain(argc, argv); });
}

/**
 * @file
 * Scheduler design-space explorer: sweeps every quad grouping, tile
 * order and subtile assignment over one benchmark and prints the
 * resulting L2 accesses, balance and performance — the tool you would
 * use to pick a scheduler for a new workload.
 *
 * Usage: scheduler_explorer [alias] [--full]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/dtexl.hh"
#include "workloads/scenegen.hh"

using namespace dtexl;

namespace {

void
runRow(const char *label, const GpuConfig &cfg, const Scene &scene,
       Cycle base_cycles, std::uint64_t base_l2)
{
    GpuSimulator gpu(cfg, scene);
    const FrameStats fs = gpu.renderFrame();
    std::printf("%-34s %9llu %+7.1f%% %8.3fx %10.3f\n", label,
                static_cast<unsigned long long>(fs.l2Accesses),
                100.0 * (static_cast<double>(fs.l2Accesses) /
                             static_cast<double>(base_l2) -
                         1.0),
                static_cast<double>(base_cycles) /
                    static_cast<double>(fs.totalCycles),
                fs.tileQuadDeviation.count()
                    ? fs.tileQuadDeviation.mean()
                    : 0.0);
}

} // namespace

int
exampleMain(int argc, char **argv)
{
    std::string alias = "SoD";
    bool full = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            full = true;
        else
            alias = argv[i];
    }

    GpuConfig base = makeBaselineConfig();
    if (!full) {
        base.screenWidth = 640;
        base.screenHeight = 288;
    }
    const BenchmarkParams &bench = benchmarkByAlias(alias);
    const Scene scene = generateScene(bench, base);

    GpuSimulator ref(base, scene);
    const FrameStats ref_fs = ref.renderFrame();
    std::printf("Benchmark %s at %ux%u; baseline %s/%s/%s coupled: "
                "%llu cycles, %llu L2 accesses\n\n",
                bench.alias.c_str(), base.screenWidth,
                base.screenHeight, toString(base.grouping).c_str(),
                toString(base.tileOrder).c_str(),
                toString(base.assignment).c_str(),
                static_cast<unsigned long long>(ref_fs.totalCycles),
                static_cast<unsigned long long>(ref_fs.l2Accesses));

    std::printf("%-34s %9s %8s %9s %10s\n", "configuration", "L2",
                "dL2", "speedup", "quadDev");

    // 1. Groupings (coupled, Z-order, constant assignment).
    std::printf("--- quad groupings (coupled) ---\n");
    for (QuadGrouping g : kAllQuadGroupings) {
        GpuConfig cfg = base;
        cfg.grouping = g;
        runRow(toString(g).c_str(), cfg, scene, ref_fs.totalCycles,
               ref_fs.l2Accesses);
    }

    // 2. Tile orders with the locality grouping.
    std::printf("--- tile orders (CG-square, flp2, decoupled) ---\n");
    for (TileOrder o : kAllTileOrders) {
        GpuConfig cfg = base;
        cfg.grouping = QuadGrouping::CGSquare;
        cfg.assignment = SubtileAssignment::Flip2;
        cfg.tileOrder = o;
        cfg.decoupledBarriers = true;
        std::string label = std::string("CG-square/") + toString(o);
        runRow(label.c_str(), cfg, scene, ref_fs.totalCycles,
               ref_fs.l2Accesses);
    }

    // 3. Subtile assignments on the DTexL pipeline.
    std::printf("--- assignments (CG-square, Hilbert, decoupled) ---\n");
    for (SubtileAssignment a : kAllSubtileAssignments) {
        GpuConfig cfg = base;
        cfg.grouping = QuadGrouping::CGSquare;
        cfg.tileOrder = TileOrder::RectHilbert;
        cfg.assignment = a;
        cfg.decoupledBarriers = true;
        std::string label = std::string("HLB-") + toString(a);
        runRow(label.c_str(), cfg, scene, ref_fs.totalCycles,
               ref_fs.l2Accesses);
    }
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return exampleMain(argc, argv); });
}

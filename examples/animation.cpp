/**
 * @file
 * Multi-frame steady-state run: renders an animated sequence (the
 * camera scrolls between frames) on the baseline and DTexL machines,
 * showing warm-cache behaviour and per-frame fps — the way a game
 * actually runs, rather than a single cold frame.
 *
 * Usage: animation [alias] [frames]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dtexl.hh"
#include "workloads/scenegen.hh"

using namespace dtexl;

int
exampleMain(int argc, char **argv)
{
    const std::string alias = argc > 1 ? argv[1] : "SoD";
    const int frames = argc > 2 ? std::atoi(argv[2]) : 5;

    GpuConfig base = makeBaselineConfig();
    base.screenWidth = 640;
    base.screenHeight = 288;
    GpuConfig dtexl_cfg = makeDTexLConfig();
    dtexl_cfg.screenWidth = base.screenWidth;
    dtexl_cfg.screenHeight = base.screenHeight;

    const BenchmarkParams &bench = benchmarkByAlias(alias);
    std::printf("Animating %s for %d frames at %ux%u\n\n",
                bench.alias.c_str(), frames, base.screenWidth,
                base.screenHeight);
    std::printf("%5s %18s %18s %9s\n", "frame", "baseline fps (L2)",
                "DTexL fps (L2)", "speedup");

    // Scenes per frame; the simulators persist so caches stay warm
    // across frames, like real hardware.
    std::vector<Scene> scenes;
    scenes.reserve(static_cast<std::size_t>(frames));
    for (int f = 0; f < frames; ++f)
        scenes.push_back(generateScene(
            bench, base, static_cast<std::uint32_t>(f)));

    // Persistent simulators: caches stay warm across frames, like
    // real hardware.
    GpuSimulator a(base, scenes[0]);
    GpuSimulator b(dtexl_cfg, scenes[0]);
    double total_speedup = 0.0;
    for (int f = 0; f < frames; ++f) {
        a.setScene(scenes[static_cast<std::size_t>(f)]);
        b.setScene(scenes[static_cast<std::size_t>(f)]);
        const FrameStats fa = a.renderFrame();
        const FrameStats fb = b.renderFrame();
        const double speedup = static_cast<double>(fa.totalCycles) /
                               static_cast<double>(fb.totalCycles);
        total_speedup += speedup;
        std::printf("%5d %9.0f (%7llu) %9.0f (%7llu) %8.3fx\n", f,
                    fa.fps,
                    static_cast<unsigned long long>(fa.l2Accesses),
                    fb.fps,
                    static_cast<unsigned long long>(fb.l2Accesses),
                    speedup);
    }
    std::printf("\nmean speedup: %.3fx\n",
                total_speedup / frames);
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return exampleMain(argc, argv); });
}

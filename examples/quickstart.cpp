/**
 * @file
 * Quickstart: render one frame of a Table I benchmark on the baseline
 * machine and on DTexL, and print the headline comparison.
 *
 * Usage: quickstart [alias] [--small]
 *   alias    benchmark alias from Table I (default GTr)
 *   --small  quarter-resolution screen for a fast demo run
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/dtexl.hh"
#include "power/energy_model.hh"
#include "workloads/scenegen.hh"

int
exampleMain(int argc, char **argv)
{
    using namespace dtexl;

    std::string alias = "GTr";
    bool small = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--small") == 0)
            small = true;
        else
            alias = argv[i];
    }

    const BenchmarkParams &bench = benchmarkByAlias(alias);

    GpuConfig base = makeBaselineConfig();
    if (small) {
        base.screenWidth = 480;
        base.screenHeight = 192;
    }
    GpuConfig dtexl_cfg = makeDTexLConfig();
    dtexl_cfg.screenWidth = base.screenWidth;
    dtexl_cfg.screenHeight = base.screenHeight;

    std::printf("Benchmark: %s (%s), %.1f MiB textures, %s\n",
                bench.name.c_str(), bench.alias.c_str(),
                bench.textureFootprintMiB, bench.is3D ? "3D" : "2D");
    std::printf("Screen %ux%u, %u tiles\n\n", base.screenWidth,
                base.screenHeight, base.numTiles());

    const Scene scene = generateScene(bench, base);
    EnergyModel energy;

    auto run = [&](const char *label, const GpuConfig &cfg) {
        GpuSimulator gpu(cfg, scene);
        FrameStats fs = gpu.renderFrame();
        EnergyBreakdown e = energy.compute(cfg, fs);
        std::printf("[%s] %s / %s order / %s / %s barriers\n", label,
                    toString(cfg.grouping).c_str(),
                    toString(cfg.tileOrder).c_str(),
                    toString(cfg.assignment).c_str(),
                    cfg.decoupledBarriers ? "decoupled" : "coupled");
        std::printf("  cycles: %llu (geom %llu, raster %llu)  fps: %.1f\n",
                    static_cast<unsigned long long>(fs.totalCycles),
                    static_cast<unsigned long long>(fs.geometryCycles),
                    static_cast<unsigned long long>(fs.rasterCycles),
                    fs.fps);
        std::printf("  quads: rasterized %llu, early-Z culled %llu, "
                    "shaded %llu\n",
                    static_cast<unsigned long long>(fs.quadsRasterized),
                    static_cast<unsigned long long>(fs.quadsCulledEarlyZ),
                    static_cast<unsigned long long>(fs.quadsShaded));
        std::printf("  L1 tex: %llu accesses (%.1f%% miss)   L2: %llu "
                    "accesses   DRAM: %llu\n",
                    static_cast<unsigned long long>(fs.l1TexAccesses),
                    fs.l1TexAccesses
                        ? 100.0 * static_cast<double>(fs.l1TexMisses) /
                              static_cast<double>(fs.l1TexAccesses)
                        : 0.0,
                    static_cast<unsigned long long>(fs.l2Accesses),
                    static_cast<unsigned long long>(fs.dramAccesses));
        std::printf("  L1 replication factor: %.2f\n",
                    fs.textureReplication);
        std::printf("  tile imbalance (time): %s\n",
                    fs.tileTimeDeviation.count()
                        ? fs.tileTimeDeviation.summary().c_str()
                        : "(n/a)");
        std::printf("  energy:\n%s\n", e.describe().c_str());
        return fs;
    };

    FrameStats a = run("baseline", base);
    FrameStats b = run("DTexL   ", dtexl_cfg);

    std::printf("==== DTexL vs baseline ====\n");
    std::printf("  L2 accesses: %+.1f%%\n",
                100.0 * (static_cast<double>(b.l2Accesses) /
                             static_cast<double>(a.l2Accesses) -
                         1.0));
    std::printf("  speedup: %.3fx\n",
                static_cast<double>(a.totalCycles) /
                    static_cast<double>(b.totalCycles));
    EnergyBreakdown ea = energy.compute(base, a);
    EnergyBreakdown eb = energy.compute(dtexl_cfg, b);
    std::printf("  energy: %+.1f%%\n",
                100.0 * (eb.total() / ea.total() - 1.0));
    return 0;
}

int
main(int argc, char **argv)
{
    return dtexl::runGuardedMain([&] { return exampleMain(argc, argv); });
}

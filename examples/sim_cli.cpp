/**
 * @file
 * The production driver: a command-line front end to the whole
 * simulator. Generates or loads a scene, applies arbitrary machine /
 * scheduling options, renders N frames and reports statistics (and
 * optionally saves the scene for later replay).
 *
 * Usage:
 *   sim_cli [--bench=GTr | --scene=file.dscene] [--frames=N]
 *           [--save-scene=file.dscene] [--preset=baseline|dtexl]
 *           [key=value ...]
 *
 * key=value options are applyConfigOption() keys, e.g.:
 *   sim_cli --bench=CCS grouping=CG-square order=Hilbert \
 *           assignment=flp2 decoupled=1 width=980 height=384
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dtexl.hh"
#include "power/energy_model.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

using namespace dtexl;

int
main(int argc, char **argv)
{
    std::string bench_alias = "SoD";
    std::string scene_path;
    std::string save_path;
    int frames = 1;
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = 640;
    cfg.screenHeight = 288;
    std::vector<std::pair<std::string, std::string>> options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (arg.rfind("--bench=", 0) == 0) {
            bench_alias = value_of("--bench=");
        } else if (arg.rfind("--scene=", 0) == 0) {
            scene_path = value_of("--scene=");
        } else if (arg.rfind("--save-scene=", 0) == 0) {
            save_path = value_of("--save-scene=");
        } else if (arg.rfind("--frames=", 0) == 0) {
            frames = std::atoi(value_of("--frames=").c_str());
        } else if (arg == "--preset=dtexl") {
            const std::uint32_t w = cfg.screenWidth;
            const std::uint32_t h = cfg.screenHeight;
            cfg = makeDTexLConfig();
            cfg.screenWidth = w;
            cfg.screenHeight = h;
        } else if (arg == "--preset=baseline") {
            // default
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see file header for usage\n");
            return 0;
        } else if (arg.find('=') != std::string::npos &&
                   arg.rfind("--", 0) != 0) {
            const std::size_t eq = arg.find('=');
            options.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
        } else {
            fatal("unknown argument '%s'", arg.c_str());
        }
    }
    for (const auto &[k, v] : options)
        applyConfigOption(cfg, k, v);
    cfg.validate();

    std::printf("%s\n", cfg.describe().c_str());

    std::vector<Scene> scenes;
    if (!scene_path.empty()) {
        std::printf("loading scene '%s'\n", scene_path.c_str());
        scenes.push_back(loadSceneFile(scene_path));
        frames = 1;
    } else {
        const BenchmarkParams &bench = benchmarkByAlias(bench_alias);
        std::printf("generating %d frame(s) of %s\n", frames,
                    bench.name.c_str());
        for (int f = 0; f < frames; ++f)
            scenes.push_back(generateScene(
                bench, cfg, static_cast<std::uint32_t>(f)));
    }
    if (!save_path.empty()) {
        saveSceneFile(save_path, scenes[0]);
        std::printf("scene saved to '%s'\n", save_path.c_str());
    }

    GpuSimulator gpu(cfg, scenes[0]);
    EnergyModel energy;
    for (std::size_t f = 0; f < scenes.size(); ++f) {
        gpu.setScene(scenes[f]);
        const FrameStats fs = gpu.renderFrame();
        const EnergyBreakdown e = energy.compute(cfg, fs);
        std::printf(
            "frame %zu: %llu cycles (%.1f fps) | quads %llu shaded "
            "(%llu EZ-culled, %llu HiZ-culled) | L1tex %llu  L2 %llu  "
            "DRAM %llu | repl %.2f | %.1f uJ\n",
            f, static_cast<unsigned long long>(fs.totalCycles), fs.fps,
            static_cast<unsigned long long>(fs.quadsShaded),
            static_cast<unsigned long long>(fs.quadsCulledEarlyZ),
            static_cast<unsigned long long>(fs.quadsCulledHiZ),
            static_cast<unsigned long long>(fs.l1TexAccesses),
            static_cast<unsigned long long>(fs.l2Accesses),
            static_cast<unsigned long long>(fs.dramAccesses),
            fs.textureReplication, e.total() * 1e6);
    }
    return 0;
}

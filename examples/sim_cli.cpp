/**
 * @file
 * The production driver: a command-line front end to the whole
 * simulator. Generates or loads scenes, applies arbitrary machine /
 * scheduling options, renders N frames per benchmark through the
 * phase-structured engine and reports statistics. Several benchmarks
 * are fanned over the parallel batch driver.
 *
 * Usage:
 *   sim_cli [--bench=GTr[,CCS,...] | --scene=file.dscene] [--frames=N]
 *           [--jobs=N] [--geom-threads=N] [--raster-threads=N|auto]
 *           [--trace=trace.json] [--stats]
 *           [--stats-json=stats.json] [--timeline-csv=timeline.csv]
 *           [--save-scene=file.dscene] [--preset=baseline|dtexl]
 *           [--reference-path] [--cache-dir=DIR] [--cache=MODE]
 *           [--checkpoint-every=N] [--resume]
 *           [--events=events.jsonl] [--progress] [--version]
 *           [key=value ...]
 *
 * key=value options are applyConfigOption() keys, e.g.:
 *   sim_cli --bench=CCS grouping=CG-square order=Hilbert \
 *           assignment=flp2 decoupled=1 width=980 height=384
 *
 * Telemetry (see EXPERIMENTS.md "Observability"): telemetry=1 records
 * per-unit stall attribution, telemetry=2 adds counter timelines;
 * e.g.  sim_cli --bench=GTr telemetry=2 --trace=t.json \
 *               --stats-json=s.json --timeline-csv=tl.csv
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dtexl.hh"
#include "power/energy_model.hh"
#include "telemetry/cli_options.hh"
#include "telemetry/export.hh"
#include "workloads/scene_io.hh"
#include "workloads/scenegen.hh"

using namespace dtexl;

namespace {

void
printFrame(const std::string &label, std::size_t f,
           const FrameStats &fs, const EnergyBreakdown &e)
{
    std::printf(
        "%s frame %zu: %llu cycles (%.1f fps) | quads %llu shaded "
        "(%llu EZ-culled, %llu HiZ-culled) | L1tex %llu  L2 %llu  "
        "DRAM %llu | repl %.2f | %.1f uJ\n",
        label.c_str(), f,
        static_cast<unsigned long long>(fs.totalCycles), fs.fps,
        static_cast<unsigned long long>(fs.quadsShaded),
        static_cast<unsigned long long>(fs.quadsCulledEarlyZ),
        static_cast<unsigned long long>(fs.quadsCulledHiZ),
        static_cast<unsigned long long>(fs.l1TexAccesses),
        static_cast<unsigned long long>(fs.l2Accesses),
        static_cast<unsigned long long>(fs.dramAccesses),
        fs.textureReplication, e.total() * 1e6);
}

} // namespace

int
simCliMain(int argc, char **argv)
{
    std::string bench_list = "SoD";
    std::string scene_path;
    std::string save_path;
    int frames = 1;
    bool dump_stats = false;
    CommonCliOptions common;
    CommonCliOptions::noteInvocation(argc, argv);
    GpuConfig cfg = makeBaselineConfig();
    cfg.screenWidth = 640;
    cfg.screenHeight = 288;
    std::vector<std::pair<std::string, std::string>> options;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value_of = [&](const char *prefix) {
            return arg.substr(std::string(prefix).size());
        };
        if (common.tryParse(arg)) {
            // Shared flag (--jobs, --trace, --stats-json,
            // --timeline-csv, --reference-path).
        } else if (arg.rfind("--bench=", 0) == 0) {
            bench_list = value_of("--bench=");
        } else if (arg.rfind("--scene=", 0) == 0) {
            scene_path = value_of("--scene=");
        } else if (arg.rfind("--save-scene=", 0) == 0) {
            save_path = value_of("--save-scene=");
        } else if (arg.rfind("--frames=", 0) == 0) {
            const std::string value = value_of("--frames=");
            char *end = nullptr;
            const long n = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || n < 1 ||
                n > 100000)
                fatal("--frames must be a number in [1, 100000], "
                      "got '%s'", value.c_str());
            frames = static_cast<int>(n);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--preset=dtexl") {
            const std::uint32_t w = cfg.screenWidth;
            const std::uint32_t h = cfg.screenHeight;
            cfg = makeDTexLConfig();
            cfg.screenWidth = w;
            cfg.screenHeight = h;
        } else if (arg == "--preset=baseline") {
            // default
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see file header for usage\n");
            return 0;
        } else if (arg.find('=') != std::string::npos &&
                   arg.rfind("--", 0) != 0) {
            const std::size_t eq = arg.find('=');
            options.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
        } else {
            CommonCliOptions::rejectUnknown(
                arg, "usage: sim_cli [--bench=A[,B,...] | "
                     "--scene=FILE] [--frames=N] [--stats] "
                     "[--preset=baseline|dtexl] [key=value ...] plus "
                     "the shared flags (see --help)");
        }
    }
    for (const auto &[k, v] : options)
        applyConfigOption(cfg, k, v);
    cfg.simFastPath = cfg.simFastPath && common.fastPath;
    common.applyThreadKnobs(cfg);
    cfg.validate();

    std::printf("%s\n", cfg.describe().c_str());

    // Resolve the benchmark list (a saved scene is a single job).
    std::vector<std::string> aliases;
    if (scene_path.empty()) {
        std::size_t pos = 0;
        while (pos <= bench_list.size()) {
            const std::size_t comma = bench_list.find(',', pos);
            const std::size_t end =
                comma == std::string::npos ? bench_list.size() : comma;
            if (end > pos)
                aliases.push_back(bench_list.substr(pos, end - pos));
            if (comma == std::string::npos)
                break;
            pos = comma + 1;
        }
        if (aliases.empty())
            fatal("--bench needs at least one alias");
    }

    // Pre-generate every job's frame scenes (they must stay valid and
    // unmutated while workers render from them).
    std::vector<std::string> labels;
    std::vector<std::vector<Scene>> job_scenes;
    if (!scene_path.empty()) {
        std::printf("loading scene '%s'\n", scene_path.c_str());
        labels.push_back(scene_path);
        job_scenes.emplace_back();
        job_scenes.back().push_back(loadSceneFile(scene_path));
        frames = 1;
    } else {
        for (const std::string &alias : aliases) {
            const BenchmarkParams &bench = benchmarkByAlias(alias);
            std::printf("generating %d frame(s) of %s\n", frames,
                        bench.name.c_str());
            labels.push_back(alias);
            job_scenes.emplace_back();
            for (int f = 0; f < frames; ++f)
                job_scenes.back().push_back(generateScene(
                    bench, cfg, static_cast<std::uint32_t>(f)));
        }
    }
    if (!save_path.empty()) {
        saveSceneFile(save_path, job_scenes[0][0]);
        std::printf("scene saved to '%s'\n", save_path.c_str());
    }

    // Fan the jobs over the batch driver; results come back in job
    // order whatever --jobs is. The exporter detaches the registry at
    // its explicit flush below, before this stack frame dies.
    StatRegistry registry("sim_cli");
    TelemetryExport::global().attachRegistry(&registry);
    std::vector<BatchJob> batch;
    for (std::size_t j = 0; j < job_scenes.size(); ++j) {
        BatchJob bj;
        bj.label = labels[j];
        bj.cfg = cfg;
        const std::vector<Scene> *scenes = &job_scenes[j];
        bj.scene = [scenes](std::uint32_t f) -> const Scene & {
            return (*scenes)[f];
        };
        bj.frames = static_cast<std::uint32_t>(job_scenes[j].size());
        batch.push_back(std::move(bj));
    }
    const std::vector<BatchResult> results =
        runBatch(batch, common.jobs, &registry);

    EnergyModel energy;
    for (const BatchResult &r : results) {
        if (!r.ok)
            continue;
        for (std::size_t f = 0; f < r.frames.size(); ++f)
            printFrame(r.label, f, r.frames[f],
                       energy.compute(cfg, r.frames[f]));
        // Simulator throughput summary (scene generation excluded);
        // scripts/run_perf.py parses these lines.
        std::uint64_t sim_cycles = 0;
        for (const FrameStats &fs : r.frames)
            sim_cycles += fs.totalCycles;
        const double mcps = r.wallMs > 0.0
                                ? static_cast<double>(sim_cycles) /
                                      (r.wallMs * 1e3)
                                : 0.0;
        std::printf("%s summary: %zu frame(s), %llu sim cycles, "
                    "%.3f ms wall, %.3f Mcycles/s%s\n",
                    r.label.c_str(), r.frames.size(),
                    static_cast<unsigned long long>(sim_cycles),
                    r.wallMs, mcps,
                    r.cacheHit ? " (cached)" : "");
        // Per-domain wall breakdown of the partitioned raster loop
        // (raster-threads > 1 only); scripts/run_perf.py parses it.
        if (!r.domainWallMs.empty()) {
            std::printf("%s domains:", r.label.c_str());
            for (std::size_t d = 0; d < r.domainWallMs.size(); ++d)
                std::printf(" d%zu=%.3fms", d, r.domainWallMs[d]);
            std::printf("\n");
        }
    }
    // Batch-level cache summary: hit rate over this batch's jobs, and
    // the process-cumulative counters published into the registry so
    // --stats-json carries them too.
    if (ResultCache::global().enabled()) {
        ResultCache::global().publishStats(&registry);
        std::size_t cached = 0;
        for (const BatchResult &r : results)
            cached += r.cacheHit ? 1 : 0;
        std::printf("cache summary: %zu of %zu job(s) served from "
                    "cache (%.0f%% hit rate)\n",
                    cached, results.size(),
                    results.empty()
                        ? 0.0
                        : 100.0 * static_cast<double>(cached) /
                              static_cast<double>(results.size()));
    }
    if (dump_stats)
        std::printf("\n%s", registry.dump().c_str());
    TelemetryExport::global().flush();
    TraceWriter::global().flush();
    // Failed jobs are summarized after the artifacts are safe on disk;
    // the exit code distinguishes all-ok / user error / internal /
    // watchdog / partial batch (see DESIGN.md).
    reportBatchFailures(results);
    return batchExitCode(results);
}

int
main(int argc, char **argv)
{
    return runGuardedMain([&] { return simCliMain(argc, argv); });
}

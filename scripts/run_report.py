#!/usr/bin/env python3
"""Validator / summarizer for the run-event ledger (--events=FILE).

The ledger is append-only JSONL, schema "dtexl-events-v1" (see
DESIGN.md "Run observability"): one event per line, a monotonic `seq`
assigned by the single writer thread, wall timestamps, and a typed
`event` field drawn from a closed vocabulary.

Default mode prints a per-sweep summary: per-job wall time and
frame/cycle totals, the cache hit rate, an error breakdown by kind,
and the slowest frames of the run.

--check turns the script into a CI validator (exit 1 on any
violation):

  * every line parses as JSON and carries seq/ts_ms/t_ms/event;
  * the first event is run_start with the expected schema marker;
  * seq is exactly 0..N-1 in file order;
  * every event name is in the vocabulary, job-scoped events name
    their job, and per-kind required fields are present;
  * the last event is run_end and its totals agree with the counted
    job_submit/job_complete/job_error events;
  * optional --expect-jobs / --expect-errors pin the sweep shape.

--canon prints a canonical form for cross-run comparison: volatile
fields (seq, timestamps, wall times, worker ids, argv/host metadata)
are stripped and the remaining lines sorted, so two ledgers of the
same sweep compare equal for ANY --jobs / --geom-threads /
--raster-threads values:

  diff <(run_report.py a.jsonl --canon) <(run_report.py b.jsonl --canon)

Usage:
  python3 scripts/run_report.py events.jsonl [--check] [--canon]
      [--expect-jobs N] [--expect-errors N] [--top 5]
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "dtexl-events-v1"

EVENTS = {
    "run_start",
    "job_submit",
    "job_start",
    "job_frame",
    "job_checkpoint",
    "job_cache_hit",
    "job_cache_miss",
    "job_cache_store",
    "job_resume",
    "job_complete",
    "job_error",
    "watchdog",
    "run_end",
}

# Fields required per event kind, beyond the common envelope.
REQUIRED = {
    "run_start": ["args", "config", "build"],
    "job_submit": ["index", "frames"],
    "job_start": ["worker"],
    "job_frame": ["frame", "cycles", "wall_ms"],
    "job_checkpoint": ["frames_done"],
    "job_cache_hit": ["key"],
    "job_cache_miss": ["key"],
    "job_cache_store": ["key"],
    "job_resume": ["key"],
    "job_complete": ["frames", "cycles", "wall_ms", "cached"],
    "job_error": ["kind", "error"],
    "watchdog": ["error"],
    "run_end": ["jobs", "ok", "failed", "frames", "cache_hits"],
}

# Events that must carry a "job" label.
JOB_SCOPED = EVENTS - {"run_start", "run_end"}

# Stripped by --canon: host-execution artifacts that legitimately vary
# between runs of the same sweep. "simd" is stripped for the same
# reason it is excluded from the result-cache config digest: the lane
# kernels are bit-exact, so --simd=auto and --simd=scalar ledgers of
# one sweep must canon-compare equal.
VOLATILE = {"seq", "ts_ms", "t_ms", "wall_ms", "worker"}
VOLATILE_RUN_START = {"args", "pid", "host", "nproc", "simd"}

errors = []


def fail(msg):
    errors.append(msg)
    print(f"CHECK FAIL: {msg}", file=sys.stderr)


def load(path):
    events = []
    try:
        text = Path(path).read_text()
    except OSError as e:
        sys.exit(f"{path}: cannot read ledger: {e}")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            ev = json.loads(line)
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not JSON: {e}")
            continue
        if not isinstance(ev, dict):
            fail(f"{path}:{lineno}: not a JSON object")
            continue
        ev["_line"] = lineno
        events.append(ev)
    if not events:
        sys.exit(f"{path}: empty ledger")
    return events


def validate(path, events, expect_jobs, expect_errors):
    for ev in events:
        line = ev["_line"]
        for field in ("seq", "ts_ms", "t_ms", "event"):
            if field not in ev:
                fail(f"{path}:{line}: missing '{field}'")
        name = ev.get("event")
        if name not in EVENTS:
            fail(f"{path}:{line}: unknown event {name!r}")
            continue
        if name in JOB_SCOPED and not ev.get("job"):
            fail(f"{path}:{line}: {name} without a 'job'")
        for field in REQUIRED.get(name, []):
            if field not in ev:
                fail(f"{path}:{line}: {name} missing '{field}'")

    first, last = events[0], events[-1]
    if first.get("event") != "run_start":
        fail(f"{path}: first event is {first.get('event')!r}, "
             "want 'run_start'")
    elif first.get("schema") != SCHEMA:
        fail(f"{path}: schema is {first.get('schema')!r}, "
             f"want {SCHEMA!r}")
    if last.get("event") != "run_end":
        fail(f"{path}: last event is {last.get('event')!r}, "
             "want 'run_end' (truncated run?)")

    seqs = [ev.get("seq") for ev in events]
    if seqs != list(range(len(events))):
        fail(f"{path}: seq is not 0..{len(events) - 1} in file order")

    submits = sum(1 for ev in events if ev.get("event") == "job_submit")
    completes = sum(
        1 for ev in events if ev.get("event") == "job_complete")
    errs = sum(1 for ev in events if ev.get("event") == "job_error")
    if last.get("event") == "run_end":
        if last.get("jobs") != submits:
            fail(f"{path}: run_end jobs={last.get('jobs')} but "
                 f"{submits} job_submit event(s)")
        if last.get("ok") != completes:
            fail(f"{path}: run_end ok={last.get('ok')} but "
                 f"{completes} job_complete event(s)")
        if last.get("failed") != errs:
            fail(f"{path}: run_end failed={last.get('failed')} but "
                 f"{errs} job_error event(s)")
    if expect_jobs is not None and submits != expect_jobs:
        fail(f"{path}: expected {expect_jobs} job(s), ledger has "
             f"{submits}")
    if expect_errors is not None and errs != expect_errors:
        fail(f"{path}: expected {expect_errors} error(s), ledger has "
             f"{errs}")


def canon(events):
    lines = []
    for ev in events:
        name = ev.get("event")
        drop = VOLATILE | {"_line"}
        if name == "run_start":
            drop = drop | VOLATILE_RUN_START
        kept = {k: v for k, v in ev.items() if k not in drop}
        lines.append(json.dumps(kept, sort_keys=True))
    return sorted(lines)


def summarize(path, events, top):
    run_start = events[0] if events[0].get("event") == "run_start" else {}
    print(f"ledger: {path}")
    if run_start:
        print(f"  build  {run_start.get('build')}   "
              f"config {run_start.get('config')}")
        print(f"  simd   {run_start.get('simd', '?')}")
        print(f"  args   {run_start.get('args')}")

    jobs = {}  # label -> dict
    frames = []  # (wall_ms, job, frame)
    cache = {"hit": 0, "miss": 0, "store": 0, "resume": 0}
    error_kinds = {}
    for ev in events:
        name = ev.get("event")
        job = ev.get("job", "")
        if name == "job_submit":
            jobs.setdefault(job, {"frames": ev.get("frames", 0)})
        elif name == "job_frame":
            frames.append((ev.get("wall_ms", 0.0), job,
                           ev.get("frame", 0)))
        elif name == "job_complete":
            jobs.setdefault(job, {})
            jobs[job].update(wall=ev.get("wall_ms", 0.0),
                             cycles=ev.get("cycles", 0),
                             done=ev.get("frames", 0),
                             cached=bool(ev.get("cached")),
                             ok=True)
        elif name == "job_error":
            jobs.setdefault(job, {})
            jobs[job].update(ok=False, error=ev.get("error", ""),
                             kind=ev.get("kind", "?"))
            error_kinds[ev.get("kind", "?")] = (
                error_kinds.get(ev.get("kind", "?"), 0) + 1)
        elif name == "job_cache_hit":
            cache["hit"] += 1
        elif name == "job_cache_miss":
            cache["miss"] += 1
        elif name == "job_cache_store":
            cache["store"] += 1
        elif name == "job_resume":
            cache["resume"] += 1

    print(f"\n  {'job':<16} {'status':<10} {'frames':>6} "
          f"{'cycles':>12} {'wall ms':>10}")
    for label, j in jobs.items():
        if j.get("ok") is False:
            status = f"FAILED:{j.get('kind', '?')}"
        elif j.get("cached"):
            status = "cached"
        else:
            status = "ok"
        print(f"  {label:<16} {status:<10} {j.get('done', 0):>6} "
              f"{j.get('cycles', 0):>12} {j.get('wall', 0.0):>10.1f}")

    looked_up = cache["hit"] + cache["miss"]
    if looked_up:
        rate = 100.0 * cache["hit"] / looked_up
        print(f"\n  cache: {cache['hit']} hit(s), {cache['miss']} "
              f"miss(es), {cache['store']} store(s), "
              f"{cache['resume']} resume(s) — {rate:.0f}% hit rate")
    if error_kinds:
        breakdown = ", ".join(
            f"{k}: {n}" for k, n in sorted(error_kinds.items()))
        print(f"  errors: {breakdown}")
    if frames:
        frames.sort(reverse=True)
        print(f"\n  slowest frame(s):")
        for wall, job, frame in frames[:top]:
            print(f"    {job} frame {frame}: {wall:.1f} ms")


def main():
    ap = argparse.ArgumentParser(
        description="validate / summarize a dtexl-events-v1 ledger")
    ap.add_argument("ledger", help="JSONL file from --events=FILE")
    ap.add_argument("--check", action="store_true",
                    help="validate; exit 1 on any violation")
    ap.add_argument("--canon", action="store_true",
                    help="print the canonical (order/host-invariant) "
                         "form for cross-run diffs")
    ap.add_argument("--expect-jobs", type=int, default=None,
                    help="with --check: require exactly N job_submit "
                         "events")
    ap.add_argument("--expect-errors", type=int, default=None,
                    help="with --check: require exactly N job_error "
                         "events")
    ap.add_argument("--top", type=int, default=5,
                    help="slowest frames to list (default 5)")
    args = ap.parse_args()

    events = load(args.ledger)
    if args.canon:
        for line in canon(events):
            print(line)
        return
    validate(args.ledger, events, args.expect_jobs, args.expect_errors)
    if args.check:
        if errors:
            sys.exit(f"{len(errors)} check(s) failed")
        print(f"{args.ledger}: OK ({len(events)} events)")
        return
    summarize(args.ledger, events, args.top)


if __name__ == "__main__":
    main()

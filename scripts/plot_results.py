#!/usr/bin/env python3
"""Plot the CSV output of the experiment binaries.

Usage:
    ./build/bench/fig16_subtile_mappings --full --csv=fig16.csv
    scripts/plot_results.py fig16.csv fig16.png

Each CSV section (started by a '# <title>' comment and a 'label,...'
header, as written by the bench harness) becomes one grouped bar chart;
multiple sections stack vertically in the output image. Requires
matplotlib.
"""

import csv
import sys


def read_sections(path):
    """Parse the harness CSV: list of (title, columns, rows)."""
    sections = []
    title, columns, rows = None, None, []
    with open(path, newline="") as f:
        for record in csv.reader(f):
            if not record:
                continue
            if record[0].startswith("#"):
                if columns is not None:
                    sections.append((title, columns, rows))
                title = record[0].lstrip("# ").strip()
                columns, rows = None, []
            elif record[0] == "label":
                columns = record[1:]
            else:
                rows.append((record[0], [float(x) for x in record[1:]]))
    if columns is not None:
        sections.append((title, columns, rows))
    return sections


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    src, dst = sys.argv[1], sys.argv[2]
    sections = read_sections(src)
    if not sections:
        sys.exit(f"no harness CSV sections found in {src}")

    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(
        len(sections), 1, figsize=(10, 4 * len(sections)), squeeze=False
    )
    for ax, (title, columns, rows) in zip(axes[:, 0], sections):
        labels = [r[0] for r in rows]
        n_cols = len(columns)
        width = 0.8 / n_cols
        for ci, col in enumerate(columns):
            xs = [i + ci * width for i in range(len(rows))]
            ax.bar(xs, [r[1][ci] for r in rows], width, label=col)
        ax.set_xticks([i + 0.4 - width / 2 for i in range(len(rows))])
        ax.set_xticklabels(labels, rotation=45, ha="right", fontsize=8)
        ax.set_title(title, fontsize=10)
        ax.legend(fontsize=8)
        ax.grid(axis="y", alpha=0.3)
    fig.tight_layout()
    fig.savefig(dst, dpi=150)
    print(f"wrote {dst}")


if __name__ == "__main__":
    main()

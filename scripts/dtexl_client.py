#!/usr/bin/env python3
"""Reference client for the dtexld simulation-service daemon.

Speaks the line-framed JSON protocol over the daemon's Unix-domain
socket (see DESIGN.md "Service daemon (dtexld)"). One subcommand per
daemon command, plus conveniences for scripting sweeps:

  ping                      liveness + queue/worker counts
  submit [--wait]           admit a job; --wait polls until terminal
  status [--job LABEL]      one job or the whole table
  cancel --job LABEL        cooperative cancel
  gc [--age S]              prune stale checkpoint files
  drain                     graceful drain (in-flight jobs finish)
  shutdown                  checkpoint-and-stop drain (fast, resumable)
  subscribe                 stream the event ledger (replay + live)
  wait-for-ready            poll until the socket answers ping

Sweep usage (EXPERIMENTS.md "Service-mode sweeps"): a shell loop of
`submit` calls against a long-lived daemon gets admission control for
free — a full queue answers {"ok":false,"retry_after_ms":N} and this
client sleeps and retries (bounded), so the sweep self-paces instead
of overcommitting the host.

Exit codes: 0 ok; 1 daemon reported an error; 2 cannot connect;
3 --wait saw the job end in a non-done state.
"""

import argparse
import json
import socket
import sys
import time

DEFAULT_SOCKET = "dtexld-state/dtexld.sock"


def connect(path):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        s.connect(path)
    except OSError as e:
        print(f"dtexl_client: cannot connect to {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    return s


def rpc(sock_path, request):
    """One request/response round trip on a fresh connection."""
    s = connect(sock_path)
    try:
        f = s.makefile("rw", encoding="utf-8", newline="\n")
        f.write(json.dumps(request) + "\n")
        f.flush()
        line = f.readline()
        if not line:
            print("dtexl_client: daemon closed the connection",
                  file=sys.stderr)
            sys.exit(2)
        return json.loads(line)
    finally:
        s.close()


def emit(resp):
    print(json.dumps(resp, sort_keys=True))
    return 0 if resp.get("ok") else 1


def cmd_submit(args):
    req = {"cmd": "submit", "frames": args.frames}
    if args.job:
        req["job"] = args.job
    if args.bench:
        req["bench"] = args.bench
    if args.scene:
        req["scene"] = args.scene
    if args.preset:
        req["preset"] = args.preset
    if args.deadline_ms:
        req["deadline_ms"] = args.deadline_ms
    if args.retry_max is not None:
        req["retry_max"] = args.retry_max
    if args.option:
        req["options"] = [{"k": k, "v": v} for k, v in
                          (o.split("=", 1) for o in args.option)]

    # Backpressure-aware admission: honour retry_after_ms a bounded
    # number of times before giving up.
    for _ in range(args.admit_retries + 1):
        resp = rpc(args.socket, req)
        if resp.get("ok") or "retry_after_ms" not in resp:
            break
        time.sleep(resp["retry_after_ms"] / 1000.0)
    if not resp.get("ok"):
        return emit(resp)
    label = resp["job"]
    if not args.wait:
        return emit(resp)

    # Poll until the job reaches a terminal state (or stays pending
    # across a daemon drain, which status reports as queued/running).
    while True:
        st = rpc(args.socket, {"cmd": "status", "job": label})
        if not st.get("ok"):
            return emit(st)
        state = st["status"]["state"]
        if state in ("done", "failed", "cancelled", "expired",
                     "interrupted"):
            emit(st)
            return 0 if state == "done" else 3
        time.sleep(args.poll_s)


def cmd_simple(args):
    req = {"cmd": args.command}
    if getattr(args, "job", None):
        req["job"] = args.job
    if args.command == "gc":
        req["age_s"] = args.age
    return emit(rpc(args.socket, req))


def cmd_subscribe(args):
    s = connect(args.socket)
    f = s.makefile("rw", encoding="utf-8", newline="\n")
    f.write(json.dumps({"cmd": "subscribe"}) + "\n")
    f.flush()
    seen_end = False
    try:
        for line in f:
            sys.stdout.write(line)
            sys.stdout.flush()
            try:
                if json.loads(line).get("event") == "run_end":
                    seen_end = True
                    if args.until_end:
                        break
            except json.JSONDecodeError:
                pass
    except KeyboardInterrupt:
        pass
    finally:
        s.close()
    return 0 if (seen_end or not args.until_end) else 1


def cmd_wait_for_ready(args):
    deadline = time.monotonic() + args.timeout
    while time.monotonic() < deadline:
        try:
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            s.connect(args.socket)
            f = s.makefile("rw", encoding="utf-8", newline="\n")
            f.write(json.dumps({"cmd": "ping"}) + "\n")
            f.flush()
            line = f.readline()
            s.close()
            if line and json.loads(line).get("ok"):
                print(line.strip())
                return 0
        except OSError:
            pass
        time.sleep(0.1)
    print(f"dtexl_client: daemon not ready after {args.timeout}s",
          file=sys.stderr)
    return 2


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--socket", default=DEFAULT_SOCKET,
                    help="daemon socket path "
                         f"(default: {DEFAULT_SOCKET})")
    sub = ap.add_subparsers(dest="command", required=True)

    sub.add_parser("ping")

    sp = sub.add_parser("submit")
    sp.add_argument("--job", help="label (default: daemon-assigned)")
    sp.add_argument("--bench", help="benchmark alias (e.g. SoD)")
    sp.add_argument("--scene", help=".dscene file instead of a bench")
    sp.add_argument("--frames", type=int, default=1)
    sp.add_argument("--preset", choices=["baseline", "dtexl"])
    sp.add_argument("--deadline-ms", type=float, default=0.0)
    sp.add_argument("--retry-max", type=int, default=None)
    sp.add_argument("--option", action="append", metavar="K=V",
                    help="config override, repeatable")
    sp.add_argument("--wait", action="store_true",
                    help="poll until the job is terminal; exit 3 if "
                         "it ends in any state but done")
    sp.add_argument("--poll-s", type=float, default=0.2)
    sp.add_argument("--admit-retries", type=int, default=20,
                    help="times to honour retry_after_ms on a full "
                         "queue before giving up")

    st = sub.add_parser("status")
    st.add_argument("--job")

    cp = sub.add_parser("cancel")
    cp.add_argument("--job", required=True)

    gp = sub.add_parser("gc")
    gp.add_argument("--age", type=float, default=0.0,
                    help="minimum checkpoint age in seconds")

    sub.add_parser("drain")
    sub.add_parser("shutdown")

    sb = sub.add_parser("subscribe")
    sb.add_argument("--until-end", action="store_true",
                    help="exit once run_end streams past")

    wr = sub.add_parser("wait-for-ready")
    wr.add_argument("--timeout", type=float, default=15.0)

    args = ap.parse_args()
    if args.command == "submit":
        sys.exit(cmd_submit(args))
    if args.command == "subscribe":
        sys.exit(cmd_subscribe(args))
    if args.command == "wait-for-ready":
        sys.exit(cmd_wait_for_ready(args))
    sys.exit(cmd_simple(args))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Simulator-throughput benchmark: emits BENCH_perf.json.

Runs sim_cli on a set of figure benchmarks twice per benchmark — once
with the optimized hot path (fastpath=1, the default) and once with the
reference implementations (fastpath=0) — and records, per benchmark:

  * simulated cycles (identical between the two runs, by construction),
  * wall time of the simulation phase (scene generation excluded),
  * a per-phase wall-time breakdown (geometry front-end vs raster)
    from the engine's job.<label>.{geometry,raster}.wall_us counters,
  * simulator throughput in Mcycles/s for both paths,
  * the wall-time speedup of the fast path,
  * the wall-time overhead of telemetry=1 (stall attribution) relative
    to the plain fast path, gated at --max-telemetry-overhead (1.05x),
  * the wall-time overhead of the run-event ledger (--events
    --progress) relative to the plain fast path, gated at the same
    budget; the ledger must terminate in run_end and must not change
    any simulated statistic,
  * an informational --raster-threads=auto run (per-domain wall
    breakdown and speedup vs the serial raster loop); the regression
    gate stays pinned to the serial (raster-threads=1) numbers.

Before the simulator benches it runs bench/micro_simd — the SIMD lane
kernels against their scalar twins — and fails if the geometric mean
of the lanes/scalar speedups drops below --min-simd-speedup (1.3x).
The report records the pairs and the dispatched ISA ("simd <isa>"
from sim_cli --version), so committed numbers say which lane
implementation (sse2/avx2/neon/scalar) they measured.

The report also embeds host metadata (CPU model, logical and physical
core counts, compiler) so committed BENCH_perf.json numbers carry
their provenance, and --baseline FILE arms a regression gate: the run
fails if the geomean fast-path Mcycles/s drops more than
--max-regression (default 15%) below the baseline file's.

The run doubles as an end-to-end A/B check: every per-frame statistics
line printed by sim_cli (cycles, quads, cache/DRAM accesses, energy)
must be byte-identical between the two runs; any divergence fails the
script. Wall time is taken as the best of --repeat attempts to damp
scheduler noise.

Usage:
  python3 scripts/run_perf.py [--build-dir build] [--out BENCH_perf.json]
      [--benches GTr,SWa,CCS,SoD] [--frames 2] [--width 980]
      [--height 384] [--repeat 3] [--baseline BENCH_perf.json]
      [--max-regression 0.15]

Requires a Release build (cmake -DCMAKE_BUILD_TYPE=Release); Debug
timings are not meaningful and the script refuses obvious Debug trees.
"""

import argparse
import json
import math
import os
import platform
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Lane-kernel micro-benchmark pairs (bench/micro_simd.cc): each lane
# path against its scalar twin. The checksum pair compares the striped
# 4-chain digest against the SERIAL digest it replaced: the striping
# is the parallel formulation (the chains run as unrolled scalar code
# on purpose — a 64-bit lane loop measured slower on every backend).
SIMD_PAIRS = [
    ("BM_Rasterize/scalar", "BM_Rasterize/lanes"),
    ("BM_LodBatch/scalar", "BM_LodBatch/lanes"),
    ("BM_Footprints/bilinear_scalar", "BM_Footprints/bilinear_lanes"),
    ("BM_Footprints/trilinear_scalar", "BM_Footprints/trilinear_lanes"),
    ("BM_TileOrder/zorder_scalar", "BM_TileOrder/zorder_lanes"),
    ("BM_TileOrder/hilbert_scalar", "BM_TileOrder/hilbert_lanes"),
    ("BM_ChecksumSerial", "BM_ChecksumStriped"),
]

SUMMARY_RE = re.compile(
    r"^(?P<label>\S+) summary: (?P<frames>\d+) frame\(s\), "
    r"(?P<cycles>\d+) sim cycles, (?P<wall>[0-9.]+) ms wall, "
    r"(?P<mcps>[0-9.]+) Mcycles/s$"
)
FRAME_RE = re.compile(r"^\S+ frame \d+: ")
DOMAIN_RE = re.compile(r"d\d+=(?P<ms>[0-9.]+)ms")


def run_sim(sim_cli, alias, frames, width, height, fastpath,
            telemetry=0, phases=False, raster_threads=None,
            events=False):
    cmd = [
        str(sim_cli),
        f"--bench={alias}",
        f"--frames={frames}",
        "--preset=dtexl",
        f"width={width}",
        f"height={height}",
        f"fastpath={fastpath}",
        f"telemetry={telemetry}",
        # Perf numbers must measure the simulator, never the result
        # cache: a warm cache would skip simulation entirely (see
        # EXPERIMENTS.md "Result cache & perf methodology").
        "--cache=off",
    ]
    if raster_threads is not None:
        cmd.append(f"--raster-threads={raster_threads}")
    events_path = None
    if events:
        fd, events_path = tempfile.mkstemp(suffix=".jsonl",
                                           prefix="run_perf_events_")
        os.close(fd)
        cmd += [f"--events={events_path}", "--progress"]
    stats_path = None
    if phases:
        fd, stats_path = tempfile.mkstemp(suffix=".json",
                                          prefix="run_perf_stats_")
        os.close(fd)
        cmd.append(f"--stats-json={stats_path}")
    try:
        proc = subprocess.run(
            cmd, capture_output=True, text=True, check=True
        )
        summary = None
        frame_lines = []
        domain_wall_ms = []
        for line in proc.stdout.splitlines():
            m = SUMMARY_RE.match(line)
            if m:
                summary = m
            elif FRAME_RE.match(line):
                frame_lines.append(line)
            elif " domains: " in line:
                domain_wall_ms = [
                    float(d["ms"]) for d in DOMAIN_RE.finditer(line)
                ]
        if summary is None:
            sys.exit(f"no summary line in sim_cli output:\n{proc.stdout}")
        result = {
            "cycles": int(summary["cycles"]),
            "wall_ms": float(summary["wall"]),
            "frame_lines": frame_lines,
            "domain_wall_ms": domain_wall_ms,
        }
        if phases:
            result["phase_wall_ms"] = phase_breakdown(stats_path)
        if events:
            # The ledger must have terminated cleanly (run_end on the
            # last line) even under the perf harness.
            last = ""
            for line in Path(events_path).read_text().splitlines():
                if line.strip():
                    last = line
            if '"event":"run_end"' not in last:
                sys.exit(f"{alias}: events ledger did not end in "
                         f"run_end:\n{last}")
        return result
    finally:
        for path in (stats_path, events_path):
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass


def phase_breakdown(stats_path):
    """Geometry/raster host wall time from a --stats-json dump.

    The engine splits the tiling architecture's two phases at the
    Parameter Buffer boundary: "geometry" covers the vertex/assembly/
    binning front-end, "raster" everything from tile fetch to flush.
    """
    nodes = json.loads(Path(stats_path).read_text())["nodes"]
    out = {"geometry": 0.0, "raster": 0.0}
    for path, counters in nodes.items():
        for phase in out:
            if path.endswith("." + phase):
                out[phase] += counters.get("wall_us", 0) / 1e3
    return out


def best_of(sim_cli, alias, frames, width, height, fastpath, repeat,
            telemetry=0, phases=False, raster_threads=None):
    best = None
    for _ in range(repeat):
        r = run_sim(sim_cli, alias, frames, width, height, fastpath,
                    telemetry, phases=phases,
                    raster_threads=raster_threads)
        if best is None or r["wall_ms"] < best["wall_ms"]:
            if best is not None and r["frame_lines"] != best["frame_lines"]:
                sys.exit(f"{alias}: non-deterministic frame stats "
                         f"across repeats")
            best = r
    return best


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def host_metadata(build_dir):
    """CPU model, core count and compiler of the measuring host."""
    cpu_model = ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu_model = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    logical = os.cpu_count() or 1
    # Physical cores: unique (physical id, core id) pairs. SMT hosts
    # report 2x the logical count, and throughput claims for the
    # threaded simulator need the distinction; fall back to the
    # logical count when /proc/cpuinfo lacks topology (VMs, non-x86).
    physical = 0
    try:
        pairs = set()
        phys_id = ""
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("physical id"):
                    phys_id = line.split(":", 1)[1].strip()
                elif line.startswith("core id"):
                    pairs.add((phys_id, line.split(":", 1)[1].strip()))
        physical = len(pairs)
    except OSError:
        pass
    meta = {
        "cpu_model": cpu_model,
        "logical_cores": logical,
        "physical_cores": physical or logical,
        "platform": platform.platform(),
    }
    compiler = ""
    cache = Path(build_dir) / "CMakeCache.txt"
    if cache.exists():
        for line in cache.read_text().splitlines():
            if line.startswith("CMAKE_CXX_COMPILER:"):
                compiler = line.split("=", 1)[1].strip()
                break
    if compiler:
        try:
            out = subprocess.run([compiler, "--version"],
                                 capture_output=True, text=True)
            first = out.stdout.splitlines()
            meta["compiler"] = first[0] if first else compiler
        except OSError:
            meta["compiler"] = compiler
    return meta


def telemetry_overhead(sim_cli, alias, frames, width, height, repeat,
                       fast_lines):
    """Wall-time ratio of telemetry=1 over telemetry=0.

    The two runs of each repeat execute back to back and only the
    ratio is kept, so slow drift in background machine load cancels;
    the minimum over repeats is reported because noise can only
    inflate a ratio, never deflate the true overhead of both runs at
    once. Also asserts telemetry never changes a simulated statistic.
    """
    best = None
    for _ in range(max(repeat, 2)):
        off = run_sim(sim_cli, alias, frames, width, height, 1)
        on = run_sim(sim_cli, alias, frames, width, height, 1,
                     telemetry=1)
        if on["frame_lines"] != fast_lines:
            print("FAST:\n" + "\n".join(fast_lines))
            print("TELEMETRY:\n" + "\n".join(on["frame_lines"]))
            sys.exit(f"{alias}: telemetry=1 changed simulated stats")
        ratio = on["wall_ms"] / off["wall_ms"]
        if best is None or ratio < best:
            best = ratio
    return best


def events_overhead(sim_cli, alias, frames, width, height, repeat,
                    fast_lines):
    """Wall-time ratio of --events --progress over a plain run.

    Same paired-ratio methodology as telemetry_overhead(); also
    asserts the run-event ledger never changes a simulated statistic.
    """
    best = None
    for _ in range(max(repeat, 2)):
        off = run_sim(sim_cli, alias, frames, width, height, 1)
        on = run_sim(sim_cli, alias, frames, width, height, 1,
                     events=True)
        if on["frame_lines"] != fast_lines:
            print("FAST:\n" + "\n".join(fast_lines))
            print("EVENTS:\n" + "\n".join(on["frame_lines"]))
            sys.exit(f"{alias}: --events changed simulated stats")
        ratio = on["wall_ms"] / off["wall_ms"]
        if best is None or ratio < best:
            best = ratio
    return best


def dispatched_isa(sim_cli):
    """The SIMD backend the build dispatches to ("simd <isa>" in
    sim_cli --version); recorded so committed numbers say which lane
    implementation they measured."""
    out = subprocess.run([str(sim_cli), "--version"],
                         capture_output=True, text=True, check=True)
    m = re.search(r"\bsimd (\w+)", out.stdout)
    if not m:
        sys.exit(f"no 'simd <isa>' in {sim_cli} --version output:\n"
                 f"{out.stdout}")
    return m.group(1)


def micro_simd_report(build_dir, min_speedup):
    """Run bench/micro_simd and gate the lane kernels.

    Returns {"pairs": [...], "geomean_speedup": g}; fails the run if
    the geometric mean of the lanes/scalar speedups over SIMD_PAIRS
    drops below min_speedup.
    """
    micro = Path(build_dir) / "bench" / "micro_simd"
    if not micro.exists():
        sys.exit(f"{micro} not found; build the repo first")
    out = subprocess.run(
        [str(micro), "--benchmark_min_time=0.2",
         "--benchmark_format=json"],
        capture_output=True, text=True, check=True)
    times = {b["name"]: float(b["cpu_time"])
             for b in json.loads(out.stdout)["benchmarks"]}
    pairs = []
    for scalar, lanes in SIMD_PAIRS:
        if scalar not in times or lanes not in times:
            sys.exit(f"micro_simd output lacks pair {scalar} / {lanes}")
        pairs.append({
            "scalar": scalar,
            "lanes": lanes,
            "speedup": times[scalar] / times[lanes],
        })
    g = geomean([p["speedup"] for p in pairs])
    for p in pairs:
        print(f"   {p['lanes']:40s} {p['speedup']:5.2f}x", flush=True)
    print(f"   geomean {g:.2f}x (floor {min_speedup:.2f}x)", flush=True)
    if g < min_speedup:
        sys.exit(f"ERROR: micro_simd lanes/scalar geomean {g:.2f}x is "
                 f"below the {min_speedup:.2f}x floor")
    return {"pairs": pairs, "geomean_speedup": g}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_perf.json")
    ap.add_argument("--benches", default="GTr,SWa,CCS,SoD")
    ap.add_argument("--frames", type=int, default=2)
    ap.add_argument("--width", type=int, default=980)
    ap.add_argument("--height", type=int, default=384)
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--max-telemetry-overhead", type=float, default=1.05,
                    help="fail if geomean telemetry=1 wall-time "
                         "overhead exceeds this ratio")
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_perf.json to gate against")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="fail if geomean fast-path Mcycles/s drops "
                         "more than this fraction below --baseline")
    ap.add_argument("--min-simd-speedup", type=float, default=1.3,
                    help="fail if the micro_simd lanes/scalar geomean "
                         "speedup drops below this ratio")
    args = ap.parse_args()

    # Read the baseline before any run (and before --out, which may be
    # the same file, is overwritten).
    baseline = None
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())

    build = Path(args.build_dir)
    sim_cli = build / "examples" / "sim_cli"
    if not sim_cli.exists():
        sys.exit(f"{sim_cli} not found; build the repo first")
    cache = build / "CMakeCache.txt"
    if cache.exists() and "CMAKE_BUILD_TYPE:STRING=Debug" in cache.read_text():
        sys.exit("refusing to benchmark a Debug build tree")

    isa = dispatched_isa(sim_cli)
    print(f"== micro_simd lane kernels (simd {isa}) ==", flush=True)
    simd = micro_simd_report(args.build_dir, args.min_simd_speedup)
    simd["isa"] = isa

    benches = []
    for alias in args.benches.split(","):
        alias = alias.strip()
        if not alias:
            continue
        print(f"== {alias} ({args.frames} frames at "
              f"{args.width}x{args.height}) ==", flush=True)
        fast = best_of(sim_cli, alias, args.frames, args.width,
                       args.height, 1, args.repeat, phases=True)
        ref = best_of(sim_cli, alias, args.frames, args.width,
                      args.height, 0, args.repeat)

        # End-to-end bit-exactness gate: the simulated statistics of
        # the two paths must be byte-identical.
        if fast["frame_lines"] != ref["frame_lines"]:
            print("FAST:\n" + "\n".join(fast["frame_lines"]))
            print("REF:\n" + "\n".join(ref["frame_lines"]))
            sys.exit(f"{alias}: fast/reference statistics diverge")
        if fast["cycles"] != ref["cycles"]:
            sys.exit(f"{alias}: cycle counts diverge")

        overhead = telemetry_overhead(sim_cli, alias, args.frames,
                                      args.width, args.height,
                                      args.repeat, fast["frame_lines"])
        ev_overhead = events_overhead(sim_cli, alias, args.frames,
                                      args.width, args.height,
                                      args.repeat, fast["frame_lines"])

        # Informational multi-threaded run (--raster-threads=auto):
        # never part of the regression gate, which stays pinned to the
        # serial raster loop above so domain-count scheduling noise
        # cannot mask (or fake) a hot-path regression. Doubles as an
        # end-to-end invariance check: the partitioned loop must print
        # byte-identical per-frame statistics. On hosts without spare
        # cores the CLI clamp degrades it to the serial loop and no
        # per-domain breakdown is recorded.
        mt = best_of(sim_cli, alias, args.frames, args.width,
                     args.height, 1, args.repeat, raster_threads="auto")
        if mt["frame_lines"] != fast["frame_lines"]:
            print("SERIAL:\n" + "\n".join(fast["frame_lines"]))
            print("THREADED:\n" + "\n".join(mt["frame_lines"]))
            sys.exit(f"{alias}: raster-threads=auto statistics diverge")

        speedup = ref["wall_ms"] / fast["wall_ms"]
        entry = {
            "alias": alias,
            "frames": args.frames,
            "sim_cycles": fast["cycles"],
            "wall_ms_fast": fast["wall_ms"],
            "wall_ms_ref": ref["wall_ms"],
            "mcycles_per_s_fast": fast["cycles"] / fast["wall_ms"] / 1e3,
            "mcycles_per_s_ref": ref["cycles"] / ref["wall_ms"] / 1e3,
            "speedup": speedup,
            "telemetry_overhead": overhead,
            "events_overhead": ev_overhead,
            "stats_bit_identical": True,
            "phase_wall_ms": fast["phase_wall_ms"],
            "mt": {
                "raster_threads": "auto",
                "wall_ms": mt["wall_ms"],
                "mcycles_per_s": mt["cycles"] / mt["wall_ms"] / 1e3,
                "speedup_vs_serial": fast["wall_ms"] / mt["wall_ms"],
                "domain_wall_ms": mt["domain_wall_ms"],
                "note": "" if mt["domain_wall_ms"] else
                        "host lacks spare cores; clamp ran the "
                        "serial raster loop",
            },
        }
        benches.append(entry)
        print(f"   fast {fast['wall_ms']:9.1f} ms "
              f"({entry['mcycles_per_s_fast']:6.2f} Mcycles/s) | "
              f"ref {ref['wall_ms']:9.1f} ms | "
              f"speedup {speedup:.2f}x | "
              f"telemetry {overhead:.3f}x | "
              f"events {ev_overhead:.3f}x | "
              f"mt {entry['mt']['speedup_vs_serial']:.2f}x "
              f"({len(mt['domain_wall_ms'])} domains)", flush=True)

    if not benches:
        sys.exit("no benchmarks selected")

    speedups = [b["speedup"] for b in benches]
    overheads = [b["telemetry_overhead"] for b in benches]
    report = {
        "generated_by": "scripts/run_perf.py",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "host": host_metadata(args.build_dir),
        "config": {
            "width": args.width,
            "height": args.height,
            "frames": args.frames,
            "preset": "dtexl",
            "repeat": args.repeat,
            "jobs": 1,
        },
        "simd": simd,
        "benches": benches,
        "max_speedup": max(speedups),
        "geomean_speedup": geomean(speedups),
        "geomean_mcycles_per_s_fast": geomean(
            [b["mcycles_per_s_fast"] for b in benches]
        ),
        "geomean_telemetry_overhead": geomean(overheads),
        "geomean_events_overhead": geomean(
            [b["events_overhead"] for b in benches]
        ),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}: max speedup {report['max_speedup']:.2f}x, "
          f"geomean {report['geomean_speedup']:.2f}x, telemetry "
          f"overhead {report['geomean_telemetry_overhead']:.3f}x")

    if baseline is not None:
        base_benches = {b["alias"]: b for b in baseline["benches"]}
        shared = [b["alias"] for b in benches
                  if b["alias"] in base_benches]
        if not shared:
            sys.exit("--baseline shares no benchmarks with this run")
        base_g = geomean(
            [base_benches[a]["mcycles_per_s_fast"] for a in shared]
        )
        new_g = geomean(
            [b["mcycles_per_s_fast"] for b in benches
             if b["alias"] in base_benches]
        )
        ratio = new_g / base_g
        report["baseline_geomean_mcycles_per_s_fast"] = base_g
        report["vs_baseline"] = ratio
        Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"perf gate: {new_g:.3f} vs baseline {base_g:.3f} "
              f"Mcycles/s geomean ({ratio:.2f}x, floor "
              f"{1.0 - args.max_regression:.2f}x)")
        if ratio < 1.0 - args.max_regression:
            print(f"ERROR: geomean fast-path throughput regressed "
                  f"{(1.0 - ratio) * 100:.1f}% vs {args.baseline} "
                  f"(budget {args.max_regression * 100:.0f}%)",
                  file=sys.stderr)
            return 1

    if report["geomean_telemetry_overhead"] > args.max_telemetry_overhead:
        print(f"ERROR: telemetry=1 geomean overhead "
              f"{report['geomean_telemetry_overhead']:.3f}x exceeds the "
              f"{args.max_telemetry_overhead:.2f}x budget",
              file=sys.stderr)
        return 1
    if report["geomean_events_overhead"] > args.max_telemetry_overhead:
        print(f"ERROR: --events geomean overhead "
              f"{report['geomean_events_overhead']:.3f}x exceeds the "
              f"{args.max_telemetry_overhead:.2f}x budget",
              file=sys.stderr)
        return 1
    if report["max_speedup"] < 1.5:
        print("WARNING: fast path is below the 1.5x target on every "
              "bench", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Simulator-throughput benchmark: emits BENCH_perf.json.

Runs sim_cli on a set of figure benchmarks twice per benchmark — once
with the optimized hot path (fastpath=1, the default) and once with the
reference implementations (fastpath=0) — and records, per benchmark:

  * simulated cycles (identical between the two runs, by construction),
  * wall time of the simulation phase (scene generation excluded),
  * simulator throughput in Mcycles/s for both paths,
  * the wall-time speedup of the fast path,
  * the wall-time overhead of telemetry=1 (stall attribution) relative
    to the plain fast path, gated at --max-telemetry-overhead (1.05x).

The run doubles as an end-to-end A/B check: every per-frame statistics
line printed by sim_cli (cycles, quads, cache/DRAM accesses, energy)
must be byte-identical between the two runs; any divergence fails the
script. Wall time is taken as the best of --repeat attempts to damp
scheduler noise.

Usage:
  python3 scripts/run_perf.py [--build-dir build] [--out BENCH_perf.json]
      [--benches GTr,SWa,CCS,SoD] [--frames 2] [--width 980]
      [--height 384] [--repeat 3]

Requires a Release build (cmake -DCMAKE_BUILD_TYPE=Release); Debug
timings are not meaningful and the script refuses obvious Debug trees.
"""

import argparse
import json
import math
import re
import subprocess
import sys
import time
from pathlib import Path

SUMMARY_RE = re.compile(
    r"^(?P<label>\S+) summary: (?P<frames>\d+) frame\(s\), "
    r"(?P<cycles>\d+) sim cycles, (?P<wall>[0-9.]+) ms wall, "
    r"(?P<mcps>[0-9.]+) Mcycles/s$"
)
FRAME_RE = re.compile(r"^\S+ frame \d+: ")


def run_sim(sim_cli, alias, frames, width, height, fastpath,
            telemetry=0):
    cmd = [
        str(sim_cli),
        f"--bench={alias}",
        f"--frames={frames}",
        "--preset=dtexl",
        f"width={width}",
        f"height={height}",
        f"fastpath={fastpath}",
        f"telemetry={telemetry}",
    ]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, check=True
    )
    summary = None
    frame_lines = []
    for line in proc.stdout.splitlines():
        m = SUMMARY_RE.match(line)
        if m:
            summary = m
        elif FRAME_RE.match(line):
            frame_lines.append(line)
    if summary is None:
        sys.exit(f"no summary line in sim_cli output:\n{proc.stdout}")
    return {
        "cycles": int(summary["cycles"]),
        "wall_ms": float(summary["wall"]),
        "frame_lines": frame_lines,
    }


def best_of(sim_cli, alias, frames, width, height, fastpath, repeat,
            telemetry=0):
    best = None
    for _ in range(repeat):
        r = run_sim(sim_cli, alias, frames, width, height, fastpath,
                    telemetry)
        if best is None or r["wall_ms"] < best["wall_ms"]:
            if best is not None and r["frame_lines"] != best["frame_lines"]:
                sys.exit(f"{alias}: non-deterministic frame stats "
                         f"across repeats")
            best = r
    return best


def telemetry_overhead(sim_cli, alias, frames, width, height, repeat,
                       fast_lines):
    """Wall-time ratio of telemetry=1 over telemetry=0.

    The two runs of each repeat execute back to back and only the
    ratio is kept, so slow drift in background machine load cancels;
    the minimum over repeats is reported because noise can only
    inflate a ratio, never deflate the true overhead of both runs at
    once. Also asserts telemetry never changes a simulated statistic.
    """
    best = None
    for _ in range(max(repeat, 2)):
        off = run_sim(sim_cli, alias, frames, width, height, 1)
        on = run_sim(sim_cli, alias, frames, width, height, 1,
                     telemetry=1)
        if on["frame_lines"] != fast_lines:
            print("FAST:\n" + "\n".join(fast_lines))
            print("TELEMETRY:\n" + "\n".join(on["frame_lines"]))
            sys.exit(f"{alias}: telemetry=1 changed simulated stats")
        ratio = on["wall_ms"] / off["wall_ms"]
        if best is None or ratio < best:
            best = ratio
    return best


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--out", default="BENCH_perf.json")
    ap.add_argument("--benches", default="GTr,SWa,CCS,SoD")
    ap.add_argument("--frames", type=int, default=2)
    ap.add_argument("--width", type=int, default=980)
    ap.add_argument("--height", type=int, default=384)
    ap.add_argument("--repeat", type=int, default=3)
    ap.add_argument("--max-telemetry-overhead", type=float, default=1.05,
                    help="fail if geomean telemetry=1 wall-time "
                         "overhead exceeds this ratio")
    args = ap.parse_args()

    build = Path(args.build_dir)
    sim_cli = build / "examples" / "sim_cli"
    if not sim_cli.exists():
        sys.exit(f"{sim_cli} not found; build the repo first")
    cache = build / "CMakeCache.txt"
    if cache.exists() and "CMAKE_BUILD_TYPE:STRING=Debug" in cache.read_text():
        sys.exit("refusing to benchmark a Debug build tree")

    benches = []
    for alias in args.benches.split(","):
        alias = alias.strip()
        if not alias:
            continue
        print(f"== {alias} ({args.frames} frames at "
              f"{args.width}x{args.height}) ==", flush=True)
        fast = best_of(sim_cli, alias, args.frames, args.width,
                       args.height, 1, args.repeat)
        ref = best_of(sim_cli, alias, args.frames, args.width,
                      args.height, 0, args.repeat)

        # End-to-end bit-exactness gate: the simulated statistics of
        # the two paths must be byte-identical.
        if fast["frame_lines"] != ref["frame_lines"]:
            print("FAST:\n" + "\n".join(fast["frame_lines"]))
            print("REF:\n" + "\n".join(ref["frame_lines"]))
            sys.exit(f"{alias}: fast/reference statistics diverge")
        if fast["cycles"] != ref["cycles"]:
            sys.exit(f"{alias}: cycle counts diverge")

        overhead = telemetry_overhead(sim_cli, alias, args.frames,
                                      args.width, args.height,
                                      args.repeat, fast["frame_lines"])

        speedup = ref["wall_ms"] / fast["wall_ms"]
        entry = {
            "alias": alias,
            "frames": args.frames,
            "sim_cycles": fast["cycles"],
            "wall_ms_fast": fast["wall_ms"],
            "wall_ms_ref": ref["wall_ms"],
            "mcycles_per_s_fast": fast["cycles"] / fast["wall_ms"] / 1e3,
            "mcycles_per_s_ref": ref["cycles"] / ref["wall_ms"] / 1e3,
            "speedup": speedup,
            "telemetry_overhead": overhead,
            "stats_bit_identical": True,
        }
        benches.append(entry)
        print(f"   fast {fast['wall_ms']:9.1f} ms "
              f"({entry['mcycles_per_s_fast']:6.2f} Mcycles/s) | "
              f"ref {ref['wall_ms']:9.1f} ms | "
              f"speedup {speedup:.2f}x | "
              f"telemetry {overhead:.3f}x", flush=True)

    if not benches:
        sys.exit("no benchmarks selected")

    speedups = [b["speedup"] for b in benches]
    overheads = [b["telemetry_overhead"] for b in benches]
    report = {
        "generated_by": "scripts/run_perf.py",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "config": {
            "width": args.width,
            "height": args.height,
            "frames": args.frames,
            "preset": "dtexl",
            "repeat": args.repeat,
            "jobs": 1,
        },
        "benches": benches,
        "max_speedup": max(speedups),
        "geomean_speedup": math.exp(
            sum(math.log(s) for s in speedups) / len(speedups)
        ),
        "geomean_telemetry_overhead": math.exp(
            sum(math.log(o) for o in overheads) / len(overheads)
        ),
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}: max speedup {report['max_speedup']:.2f}x, "
          f"geomean {report['geomean_speedup']:.2f}x, telemetry "
          f"overhead {report['geomean_telemetry_overhead']:.3f}x")

    if report["geomean_telemetry_overhead"] > args.max_telemetry_overhead:
        print(f"ERROR: telemetry=1 geomean overhead "
              f"{report['geomean_telemetry_overhead']:.3f}x exceeds the "
              f"{args.max_telemetry_overhead:.2f}x budget",
              file=sys.stderr)
        return 1
    if report["max_speedup"] < 1.5:
        print("WARNING: fast path is below the 1.5x target on every "
              "bench", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Text report / validator for the telemetry exporters.

Reads a `--stats-json` dump (schema "dtexl-stats-v1") and prints, per
run prefix, a per-unit breakdown of where the raster-phase cycles went:
busy, the top stall reasons, and idle, as percentages of the unit's
accounted total. With --baseline pointing at a second stats dump (e.g.
the coupled-barrier configuration), it also prints the barrier-wait
delta between the two runs — the paper's headline mechanism, read
straight off the attribution counters.

--check turns the script into a CI validator (exit 1 on any violation):

  * the stats JSON parses, carries the expected schema marker, and
    every ".telemetry." node satisfies busy + stalls + idle == total;
  * an optional --timeline-csv file has the canonical header and
    well-formed rows with per-(label, frame, source) monotonic cycles;
  * an optional --trace file parses as Chrome trace JSON and contains
    counter ("ph":"C") events with numeric args.value.

Usage:
  python3 scripts/telemetry_report.py stats.json [--baseline other.json]
      [--timeline-csv timeline.csv] [--trace trace.json]
      [--top 3] [--check]
"""

import argparse
import csv
import json
import sys
from pathlib import Path

SCHEMA = "dtexl-stats-v1"
STALL_KEYS = (
    "stall_barrier_wait",
    "stall_no_ready_warp",
    "stall_upstream_starve",
    "stall_downstream_backpressure",
    "stall_mshr_full",
    "stall_bank_conflict",
    "stall_channel_busy",
)
TIMELINE_HEADER = ["label", "frame", "cycle", "source", "value"]

errors = []


def fail(msg):
    errors.append(msg)
    print(f"CHECK FAIL: {msg}", file=sys.stderr)


def load_stats(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: cannot read stats JSON: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    nodes = doc.get("nodes")
    if not isinstance(nodes, dict):
        sys.exit(f"{path}: no 'nodes' object")
    return doc


def telemetry_nodes(doc):
    """{run prefix: {unit name: counters}} from the flat node paths."""
    runs = {}
    for path, counters in doc["nodes"].items():
        if ".telemetry." not in path:
            continue
        prefix, unit = path.split(".telemetry.", 1)
        runs.setdefault(prefix, {})[unit] = counters
    return runs


def check_invariants(path, runs):
    if not runs:
        fail(f"{path}: no '.telemetry.' nodes (telemetry=0 run?)")
    for prefix, units in runs.items():
        for unit, c in units.items():
            where = f"{path}: {prefix}.telemetry.{unit}"
            unknown = set(c) - {"busy", "idle", "total"} - set(STALL_KEYS)
            if unknown:
                fail(f"{where}: unexpected keys {sorted(unknown)}")
            accounted = (
                c.get("busy", 0)
                + c.get("idle", 0)
                + sum(c.get(k, 0) for k in STALL_KEYS)
            )
            if accounted != c.get("total", 0):
                fail(f"{where}: busy+stalls+idle = {accounted} != "
                     f"total = {c.get('total', 0)}")


def barrier_wait(units):
    return sum(c.get("stall_barrier_wait", 0) for c in units.values())


def report(runs, top):
    for prefix in sorted(runs):
        units = runs[prefix]
        total = sum(c.get("total", 0) for c in units.values())
        print(f"\n== {prefix} ({len(units)} units, "
              f"{total} unit-cycles accounted) ==")
        print(f"{'unit':<10} {'busy':>7} {'idle':>7}  top stall reasons")
        print("-" * 64)
        for unit in sorted(units):
            c = units[unit]
            t = c.get("total", 0)
            if t == 0:
                continue

            def pct(v):
                return 100.0 * v / t

            stalls = sorted(
                ((k[len("stall_"):], c.get(k, 0)) for k in STALL_KEYS),
                key=lambda kv: kv[1],
                reverse=True,
            )
            tops = "  ".join(
                f"{name} {pct(v):.1f}%" for name, v in stalls[:top] if v
            )
            print(f"{unit:<10} {pct(c.get('busy', 0)):6.1f}% "
                  f"{pct(c.get('idle', 0)):6.1f}%  {tops}")


def report_baseline_delta(runs, base_runs):
    print("\n== barrier-wait delta vs baseline ==")
    for prefix in sorted(runs):
        bw = barrier_wait(runs[prefix])
        # Match by prefix when possible, else compare against the
        # baseline file's single run.
        if prefix in base_runs:
            base = barrier_wait(base_runs[prefix])
        elif len(base_runs) == 1:
            base = barrier_wait(next(iter(base_runs.values())))
        else:
            print(f"{prefix}: no matching baseline run")
            continue
        saved = base - bw
        rel = (100.0 * saved / base) if base else 0.0
        print(f"{prefix}: barrier-wait {bw} vs baseline {base} "
              f"({saved:+d} cycles, {rel:+.1f}%)")


def check_timeline(path):
    try:
        with open(path, newline="") as f:
            rows = list(csv.reader(f))
    except OSError as e:
        fail(f"{path}: cannot read timeline CSV: {e}")
        return
    if not rows or rows[0] != TIMELINE_HEADER:
        fail(f"{path}: header is {rows[0] if rows else 'missing'}, "
             f"want {TIMELINE_HEADER}")
        return
    if len(rows) == 1:
        fail(f"{path}: no timeline rows (needs a telemetry=2 run)")
    last_cycle = {}
    for i, row in enumerate(rows[1:], start=2):
        if len(row) != 5:
            fail(f"{path}:{i}: {len(row)} columns, want 5")
            continue
        label, frame, cycle, source, value = row
        try:
            frame, cycle, value = int(frame), int(cycle), int(value)
        except ValueError:
            fail(f"{path}:{i}: non-integer frame/cycle/value")
            continue
        key = (label, frame, source)
        if key in last_cycle and cycle < last_cycle[key]:
            fail(f"{path}:{i}: cycle went backwards for {key}")
        last_cycle[key] = cycle


def check_trace(path):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: cannot read trace JSON: {e}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: no traceEvents array")
        return
    n_counters = 0
    last_ts = {}
    for e in events:
        if e.get("ph") != "C":
            continue
        n_counters += 1
        if e.get("cat") != "counter":
            fail(f"{path}: counter event {e.get('name')!r} has "
                 f"cat {e.get('cat')!r}")
        value = e.get("args", {}).get("value")
        if not isinstance(value, (int, float)):
            fail(f"{path}: counter event {e.get('name')!r} lacks a "
                 f"numeric args.value")
        key = (e.get("tid"), e.get("name"))
        ts = e.get("ts", 0)
        if key in last_ts and ts < last_ts[key]:
            fail(f"{path}: counter track {key} timestamps go backwards")
        last_ts[key] = ts
    if n_counters == 0:
        fail(f"{path}: no counter events (needs telemetry=2 + --trace)")


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("stats", help="--stats-json output to read")
    ap.add_argument("--baseline",
                    help="second stats JSON to diff barrier-wait against")
    ap.add_argument("--timeline-csv", help="--timeline-csv output to "
                    "validate alongside")
    ap.add_argument("--trace", help="--trace output to validate for "
                    "counter tracks")
    ap.add_argument("--top", type=int, default=3,
                    help="stall reasons shown per unit (default 3)")
    ap.add_argument("--check", action="store_true",
                    help="validate only; exit 1 on any violation")
    args = ap.parse_args()

    doc = load_stats(args.stats)
    runs = telemetry_nodes(doc)
    check_invariants(args.stats, runs)

    if args.timeline_csv:
        check_timeline(args.timeline_csv)
    if args.trace:
        check_trace(args.trace)

    if not args.check:
        report(runs, args.top)
        if args.baseline:
            base_doc = load_stats(args.baseline)
            report_baseline_delta(runs, telemetry_nodes(base_doc))

    if errors:
        print(f"\n{len(errors)} check(s) failed", file=sys.stderr)
        return 1
    if args.check:
        print(f"{args.stats}: OK "
              f"({sum(len(u) for u in runs.values())} telemetry nodes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
